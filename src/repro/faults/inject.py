"""FaultInjector: deterministic fault decisions plus the event record.

Every decision is a pure function of ``(seed, kind, site, tick)``: the
tick comes from the run's :class:`~repro.faults.clock.FaultClock`, and
probabilistic rules hash those four values (blake2b) into a uniform
[0, 1) variate compared against the rule's rate.  No shared RNG is ever
consumed, so injecting faults can never perturb a workload's own random
streams -- a prerequisite for the bit-identical-output invariant.

The injector doubles as the chaos layer's flight recorder: every
injected fault, recovery action, and lost-work note is appended to an
ordered event log (and mirrored into the ``faults.*`` / ``recovery.*``
metrics of :mod:`repro.obs.metrics`), which the harness stores on the
run result for the ``repro chaos`` report and the determinism tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.faults.clock import FaultClock
from repro.faults.plan import FaultPlan, FaultRule


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the chaos flight record.

    ``phase`` is ``"fault"`` (something broke), ``"recovery"`` (the
    engine repaired it), or ``"lost"`` (recovery was off or exhausted
    and work was destroyed).  ``kind`` is the fault kind or the recovery
    action name; ``detail`` is a sorted tuple of (name, value) pairs.
    """

    seq: int
    phase: str
    kind: str
    site: str
    tick: int = 0
    detail: tuple = ()

    def __str__(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.detail)
        return f"#{self.seq} {self.phase}:{self.kind} @ {self.site}[{self.tick}]{extra}"


class NullFaultInjector:
    """The fault-free injector: nothing fires, nothing is recorded.

    Engines always hold an injector (this one by default), so the hot
    paths cost a single attribute check when chaos is off.
    """

    enabled = False
    recovery = True
    plan: Optional[FaultPlan] = None
    events: tuple = ()

    def fires(self, kind: str, site: str) -> Optional[FaultRule]:
        return None

    def active_for(self, kind: str) -> bool:
        return False

    def node_killed(self, node: int) -> bool:
        return False

    def standing(self, kind: str, site: str) -> Optional[FaultRule]:
        return None

    def unit(self, site: str, salt: str = "") -> float:
        return 1.0

    def recovered(self, action: str, site: str, **detail) -> None:
        pass

    def lost(self, what: str, site: str, **detail) -> None:
        pass

    def event_log(self) -> tuple:
        return ()

    def summary(self) -> dict:
        return {"faults": {}, "recoveries": {}, "lost": {}}


#: Shared no-op injector (analogous to NULL_TRACER / NULL_CONTEXT).
NULL_FAULTS = NullFaultInjector()


class FaultInjector(NullFaultInjector):
    """Executes a :class:`FaultPlan` deterministically for one run."""

    enabled = True

    def __init__(self, plan, seed: int = 0):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.plan = plan
        self.seed = int(seed)
        self.clock = FaultClock()
        self.events: list = []
        self._by_kind: dict = {}
        for rule in plan.rules:
            self._by_kind.setdefault(rule.kind, []).append(rule)
        self._dead_reported: set = set()
        self._standing_reported: set = set()

    @property
    def recovery(self) -> bool:
        return self.plan.recovery

    def active_for(self, kind: str) -> bool:
        """Whether any rule arms ``kind`` (lets engines skip dead code)."""
        return kind in self._by_kind

    def unit(self, site: str, salt: str = "") -> float:
        """Deterministic uniform [0, 1) variate for ``(seed, site, salt)``.

        Engines also use this directly for recovery parameters that need
        reproducible randomness (e.g. backoff jitter).
        """
        digest = hashlib.blake2b(
            f"{self.seed}|{site}|{salt}".encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2.0 ** 64

    def fires(self, kind: str, site: str) -> Optional[FaultRule]:
        """Does a ``kind`` fault strike this opportunity at ``site``?

        Advances the site's clock exactly when rules are armed for the
        kind, evaluates rules in plan order, records the fault, and
        returns the rule that fired (None otherwise).
        """
        rules = self._by_kind.get(kind)
        if not rules:
            return None
        tick = self.clock.tick(f"{kind}@{site}")
        for rule in rules:
            if rule.scope and rule.scope not in site:
                continue
            if tick in rule.at or (
                    rule.rate > 0.0
                    and self.unit(site, f"{kind}:{tick}") < rule.rate):
                self._record("fault", kind, site, tick)
                return rule
        return None

    def node_killed(self, node: int) -> bool:
        """Whether cluster node ``node`` is down for this whole run."""
        for rule in self._by_kind.get("node_kill", ()):
            if rule.node == int(node):
                if node not in self._dead_reported:
                    self._dead_reported.add(node)
                    self._record("fault", "node_kill", f"node:{node}", 0)
                return True
        return False

    def standing(self, kind: str, site: str) -> Optional[FaultRule]:
        """A standing (whole-run) condition like ``overload``: returns
        the armed rule without consuming a clock tick, recording the
        fault once per site."""
        for rule in self._by_kind.get(kind, ()):
            if rule.scope and rule.scope not in site:
                continue
            if (kind, site) not in self._standing_reported:
                self._standing_reported.add((kind, site))
                self._record("fault", kind, site, 0)
            return rule
        return None

    def recovered(self, action: str, site: str, **detail) -> None:
        """Record one successful recovery action (``recovery.*`` metrics)."""
        self._record("recovery", action, site, 0, detail)

    def lost(self, what: str, site: str, **detail) -> None:
        """Record destroyed work (recovery off/exhausted; ``faults.lost``)."""
        self._record("lost", what, site, 0, detail)

    def event_log(self) -> tuple:
        """The ordered flight record, as an immutable snapshot."""
        return tuple(self.events)

    def summary(self) -> dict:
        """Event counts: faults by kind, recoveries by action, losses."""
        out = {"faults": {}, "recoveries": {}, "lost": {}}
        buckets = {"fault": out["faults"], "recovery": out["recoveries"],
                   "lost": out["lost"]}
        for event in self.events:
            bucket = buckets[event.phase]
            bucket[event.kind] = bucket.get(event.kind, 0) + 1
        return out

    # -- internals -------------------------------------------------------------

    def _record(self, phase: str, kind: str, site: str, tick: int,
                detail: dict = None) -> None:
        from repro.obs.metrics import METRICS

        packed = tuple(sorted(detail.items())) if detail else ()
        self.events.append(FaultEvent(
            seq=len(self.events) + 1, phase=phase, kind=kind, site=site,
            tick=tick, detail=packed,
        ))
        if phase == "fault":
            METRICS.counter("faults.injected").inc()
            METRICS.counter(f"faults.{kind}").inc()
        elif phase == "recovery":
            METRICS.counter("recovery.actions").inc()
            METRICS.counter(f"recovery.{kind}").inc()
        else:
            METRICS.counter("faults.lost").inc()
            METRICS.counter(f"faults.lost.{kind}").inc()


def resolve_faults(ctx=None, faults=None):
    """Normalize an injector argument the way engines consume it.

    Precedence: an explicit injector wins; otherwise the one the harness
    attached to the profiling context (``ctx.faults``); otherwise the
    shared null injector.  Engines call this once at construction so
    their hot paths never branch on None.
    """
    if faults is not None:
        return faults
    attached = getattr(ctx, "faults", None)
    return attached if attached is not None else NULL_FAULTS
