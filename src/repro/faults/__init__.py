"""Deterministic fault injection and recovery (the chaos layer).

The paper's stacks are defined as much by how they survive failure as by
their happy paths: Hadoop re-executes failed tasks and speculatively
duplicates stragglers, HDFS re-reads lost blocks from replicas, HBase
replays its write-ahead log after a crash and checksums every block,
BSP/MPI codes checkpoint at superstep boundaries, and online services
retry with backoff, hedge slow requests, and shed load past saturation.
This package makes those behaviors injectable, recoverable, and --
crucially -- *deterministic*: every fault decision is a pure function of
``(seed, kind, site, tick)``, so identical ``(seed, FaultPlan)`` pairs
reproduce identical fault/recovery event sequences serially and under
process-parallel execution.

The invariant the chaos layer maintains: with recovery enabled, any
fault plan produces bit-identical workload *output* to the fault-free
run -- only counters and modeled timings differ.
"""

from repro.faults.clock import FaultClock
from repro.faults.inject import (
    FaultEvent,
    FaultInjector,
    NULL_FAULTS,
    NullFaultInjector,
    resolve_faults,
)
from repro.faults.plan import (
    DEFAULT_CHAOS_SPEC,
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    UnknownFaultKindError,
)
from repro.faults.verify import diff_outputs, functional_fingerprint

__all__ = [
    "DEFAULT_CHAOS_SPEC",
    "FAULT_KINDS",
    "FaultClock",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "NULL_FAULTS",
    "NullFaultInjector",
    "UnknownFaultKindError",
    "diff_outputs",
    "functional_fingerprint",
    "resolve_faults",
]
