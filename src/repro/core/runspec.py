"""RunSpec: the single value object describing one characterization run.

Before this, "which run is this?" was answered three different ways --
positional kwargs on :meth:`Harness.characterize`, ``(name, scale,
stack)`` triples in :mod:`repro.core.parallel`, and an ad-hoc tuple for
the disk cache.  A :class:`RunSpec` unifies them: every input that
shapes a result (workload, scale, stack, machine, cluster, seed) plus
the execution parameters that do not (``jobs``, ``trace``), with
explicit helpers for the memo key and the persistent-cache key.

The kwargs signatures on the harness and the ``repro.suite`` facade
remain as thin shims that build a RunSpec, so no existing caller breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.node import ClusterSpec
from repro.uarch.hierarchy import MachineConfig


@dataclass(frozen=True)
class RunSpec:
    """One fully described characterization point.

    ``stack``, ``machine``, and ``cluster`` may be left None and are
    filled from the owning harness (and the workload's default stack) by
    :meth:`resolved`.  ``jobs`` and ``trace`` are execution parameters:
    they change how a run executes (process fan-out, span recording),
    never what it computes -- which is why :meth:`cache_key` includes
    ``trace`` (a traced result stores strictly more data) but excludes
    ``jobs`` (results are bit-identical at any worker count).
    """

    workload: str
    scale: int = 1
    stack: Optional[str] = None
    machine: Optional[MachineConfig] = None
    cluster: Optional[ClusterSpec] = None
    #: None means "inherit the harness seed" (0 without a harness);
    #: any int -- including 0 -- is an explicit per-run seed.
    seed: Optional[int] = None
    jobs: int = 1
    trace: bool = False
    #: Optional fault plan (see :mod:`repro.faults`): a FaultPlan or a
    #: spec string like ``"task_crash:rate=0.3"``.  Frozen into the spec
    #: and keyed into the memo and the disk cache, so chaos runs never
    #: collide with fault-free ones.
    faults: Optional["FaultPlan"] = None
    #: Optional serving options (see :mod:`repro.serving.load`): a
    #: ServingOptions or a spec string like ``"diurnal:rps=2000@hedge"``.
    #: Selects the load profile and recovery policy the online-service
    #: workloads run under; keyed into the memo and the disk cache like
    #: ``faults``, so a diurnal run never collides with a constant one.
    serving: Optional["ServingOptions"] = None

    def __post_init__(self):
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.faults is not None:
            from repro.faults.plan import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                object.__setattr__(self, "faults",
                                   FaultPlan.parse(self.faults))
        if self.serving is not None:
            from repro.serving.load import ServingOptions

            if not isinstance(self.serving, ServingOptions):
                object.__setattr__(self, "serving",
                                   ServingOptions.parse(self.serving))

    def resolved(self, harness=None) -> "RunSpec":
        """Fill defaults and normalize the stack to its canonical name.

        With a harness, None machine/cluster take the harness' testbed
        and None ``seed``/``trace`` inherit harness settings (``trace``
        is sticky-True: either side may request it).  An explicit
        ``seed`` -- including 0 -- always wins.
        """
        from repro.core import registry

        machine, cluster, seed, trace, serving = (
            self.machine, self.cluster, self.seed, self.trace, self.serving)
        if harness is not None:
            machine = machine or harness.machine
            cluster = cluster or harness.cluster
            seed = harness.seed if seed is None else seed
            trace = trace or harness.trace
            serving = serving or getattr(harness, "serving", None)
        if seed is None:
            seed = 0
        stack = registry.create(self.workload).check_stack(self.stack)
        return replace(self, stack=stack, machine=machine, cluster=cluster,
                       seed=seed, trace=trace, serving=serving)

    @property
    def is_resolved(self) -> bool:
        return (self.stack is not None and self.machine is not None
                and self.cluster is not None and self.seed is not None)

    def memo_key(self) -> tuple:
        """The in-memory memo key (requires a resolved spec).

        Mirrors :meth:`cache_key`: every input that shapes a result --
        including ``seed`` and the cluster -- so runs differing only in
        those never collide in the memo.
        """
        self._require_resolved()
        key = (self.workload, self.scale, self.stack, self.machine.name,
               repr(self.cluster), self.seed, self.trace)
        if self.faults is not None:
            key += (("faults", str(self.faults)),)
        if self.serving is not None:
            key += (("serving", str(self.serving)),)
        return key

    def cache_key(self) -> tuple:
        """The persistent-cache key: every input that shapes a result.

        Machine and cluster go in by repr so custom configurations do
        not collide with presets sharing their name; the code
        fingerprint is handled by the cache itself.  The untraced key
        layout is unchanged from the pre-RunSpec harness, so existing
        cache entries stay valid; traced runs get a distinct entry
        (their results carry the span tree).
        """
        self._require_resolved()
        key = ("characterize", self.workload, self.scale, self.stack,
               repr(self.machine), repr(self.cluster), self.seed)
        if self.trace:
            key += ("trace",)
        if self.faults is not None:
            key += (("faults", str(self.faults)),)
        if self.serving is not None:
            key += (("serving", str(self.serving)),)
        return key

    def _require_resolved(self) -> None:
        if not self.is_resolved:
            raise ValueError(
                f"RunSpec for {self.workload!r} is unresolved; call "
                "resolved() (or go through a Harness) before keying")
