"""Plain-text table and series renderers for the analysis modules.

Every paper table/figure generator emits its data through these, so
bench output is uniform and diffable.
"""

from __future__ import annotations


def render_table(headers: list, rows: list, title: str = None) -> str:
    """Render an ASCII table with aligned columns."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(name: str, xs: list, ys: list, x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render one figure series as labelled columns."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return render_table([x_label, y_label], rows, title=name)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
