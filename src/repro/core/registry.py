"""The workload registry: every Table 4 row, constructible by name.

Two tiers: :data:`WORKLOAD_CLASSES` is exactly the paper's 19 Table 4
rows (``workload_names`` and the figure/suite surfaces stay pinned to
them), and :data:`STREAMING_CLASSES` is the engine-backed streaming
extension family -- resolvable through :func:`create` / :func:`info`
and the RunSpec/Harness path, listed by :func:`streaming_names`, but
never mixed into the paper tables.
"""

from __future__ import annotations

from repro.core.workload import Workload
from repro.workloads import (
    AggregateQueryWorkload,
    BfsWorkload,
    CollaborativeFilteringWorkload,
    ConnectedComponentsWorkload,
    GrepWorkload,
    IndexWorkload,
    JoinQueryWorkload,
    KmeansWorkload,
    NaiveBayesWorkload,
    NutchServerWorkload,
    OlioServerWorkload,
    PageRankWorkload,
    ReadWorkload,
    RubisServerWorkload,
    ScanWorkload,
    SelectQueryWorkload,
    SortWorkload,
    StreamingGrepWorkload,
    StreamingSessionsWorkload,
    StreamingWordCountWorkload,
    WordCountWorkload,
    WriteWorkload,
)

#: All 19 workload classes, keyed by their Table 4 names.
WORKLOAD_CLASSES = {
    cls.info.name: cls
    for cls in (
        SortWorkload, GrepWorkload, WordCountWorkload, BfsWorkload,
        ReadWorkload, WriteWorkload, ScanWorkload,
        SelectQueryWorkload, AggregateQueryWorkload, JoinQueryWorkload,
        NutchServerWorkload, PageRankWorkload, IndexWorkload,
        OlioServerWorkload, KmeansWorkload, ConnectedComponentsWorkload,
        RubisServerWorkload, CollaborativeFilteringWorkload,
        NaiveBayesWorkload,
    )
}

#: The streaming extension family (see :mod:`repro.workloads.streaming`).
STREAMING_CLASSES = {
    cls.info.name: cls
    for cls in (
        StreamingWordCountWorkload, StreamingGrepWorkload,
        StreamingSessionsWorkload,
    )
}


class UnknownWorkloadError(ValueError, KeyError):
    """Raised for a workload name not in Table 4 (or its extensions).

    Subclasses both ValueError (it is a bad argument -- the message
    lists every valid choice) and KeyError (the registry is a mapping,
    and long-standing callers catch the lookup that way).
    """

    def __init__(self, name: str):
        known = ", ".join(all_names())
        super().__init__(f"unknown workload {name!r}; known: {known}")

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def workload_names() -> list:
    """The 19 names in Table 6 order."""
    return sorted(WORKLOAD_CLASSES, key=lambda n: WORKLOAD_CLASSES[n].info.workload_id)


def streaming_names() -> list:
    """The streaming extension family, in workload-id order."""
    return sorted(STREAMING_CLASSES,
                  key=lambda n: STREAMING_CLASSES[n].info.workload_id)


def all_names() -> list:
    """Every constructible name: Table 6 order, then the extensions."""
    return workload_names() + streaming_names()


def create(name: str, **kwargs) -> Workload:
    """Instantiate a workload by its Table 4 (or extension) name.

    An unknown name fails fast with :class:`UnknownWorkloadError` --
    callers building a :class:`~repro.core.runspec.RunSpec` get the
    valid choices immediately instead of a deep registry KeyError.
    """
    cls = WORKLOAD_CLASSES.get(name) or STREAMING_CLASSES.get(name)
    if cls is None:
        raise UnknownWorkloadError(name)
    return cls(**kwargs)


def info(name: str):
    """The Table 4 metadata row of one workload."""
    cls = WORKLOAD_CLASSES.get(name) or STREAMING_CLASSES.get(name)
    return cls.info if cls is not None else create(name)


def by_app_type(app_type: str) -> list:
    """Workload names of one application type (Section 4.1)."""
    return [n for n in workload_names()
            if WORKLOAD_CLASSES[n].info.app_type == app_type]


def analytics_names() -> list:
    """Workloads measured in DPS (offline + realtime analytics)."""
    return [n for n in workload_names()
            if WORKLOAD_CLASSES[n].info.metric == "DPS"]


def service_names() -> list:
    """Workloads measured in RPS (online services)."""
    return [n for n in workload_names()
            if WORKLOAD_CLASSES[n].info.metric == "RPS"]


def oltp_names() -> list:
    """Workloads measured in OPS (Cloud OLTP)."""
    return [n for n in workload_names()
            if WORKLOAD_CLASSES[n].info.metric == "OPS"]
