"""Workload framework: the interface every BigDataBench workload implements.

A workload bundles (1) its Table 4 metadata -- application scenario,
application type, data type/source, software stacks; (2) its Table 6
input geometry -- what the baseline input is and how it scales; (3) a
``prepare`` step that synthesizes its input with BDGS; and (4) a ``run``
step that executes it on one of its software stacks under a profiling
context and returns functional results plus cost accounting.

Scaled-down input sizes: the paper's baselines (32 GB, 10^6 pages,
2^15 vertices, 100 req/s) are shrunk ~1000-8000x so a full sweep runs in
seconds; the 1x/4x/8x/16x/32x scale geometry of Table 6 is preserved
exactly (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.cluster.timemodel import JobCost, TimeModel

#: The data-scale multipliers of the paper's sweep (Table 6, Section 6.2).
SCALE_FACTORS = (1, 4, 8, 16, 32)

#: Global shrink factor of the reproduction's inputs versus the paper's
#: (4 MB baseline stands for 32 GB).  The time model maps byte volumes
#: back through this factor so memory-pressure and congestion effects
#: occur at the same relative points (DESIGN.md, substitution 3).
DATA_SCALE = 8192.0

#: Application types (Section 4.1).
OFFLINE = "Offline Analytics"
ONLINE = "Online Service"
REALTIME = "Realtime Analytics"

#: User-perceivable metrics (Section 6.1.2).
DPS = "DPS"   # data processed per second (analytics)
OPS = "OPS"   # operations per second (Cloud OLTP)
RPS = "RPS"   # requests per second (online services)


@dataclass(frozen=True)
class WorkloadInfo:
    """One row of the paper's Table 4 plus its Table 6 input geometry."""

    name: str
    scenario: str          # e.g. "Micro Benchmarks", "Search Engine"
    app_type: str          # OFFLINE / ONLINE / REALTIME
    data_type: str         # structured / semi-structured / unstructured
    data_source: str       # text / graph / table
    stacks: tuple          # software stacks (Table 4)
    metric: str            # DPS / OPS / RPS
    input_description: str # Table 6 input column, paper units
    workload_id: int       # Table 6 row number


@dataclass
class WorkloadInput:
    """Prepared input: payload(s), real byte size, and scale metadata."""

    payload: object
    nbytes: int
    scale: int
    details: dict = field(default_factory=dict)


@dataclass
class WorkloadResult:
    """Functional output and accounting of one workload run."""

    workload: str
    stack: str
    scale: int
    input_bytes: float
    cost: JobCost
    metric_name: str
    metric_value: float
    details: dict = field(default_factory=dict)


class Workload:
    """Base class; subclasses define ``info``, ``prepare`` and ``run``."""

    info: WorkloadInfo = None

    #: The stack used when none is requested (Table 4's first stack).
    default_stack = "hadoop"

    def prepare(self, scale: int, seed: int = 0) -> WorkloadInput:
        """Synthesize the input for ``scale`` x the baseline via BDGS."""
        raise NotImplementedError

    def run(self, prepared: WorkloadInput, ctx=None,
            cluster: ClusterSpec = PAPER_CLUSTER, stack: str = None) -> WorkloadResult:
        """Execute the workload and return results plus cost accounting."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------

    def check_scale(self, scale: int) -> None:
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")

    def check_stack(self, stack: str) -> str:
        stack = (stack or self.default_stack).lower()
        supported = {s.lower() for s in self.info.stacks}
        if stack not in supported:
            raise ValueError(
                f"{self.info.name} supports stacks {sorted(supported)}, got {stack!r}"
            )
        return stack

    def dps(self, input_bytes: float, cost: JobCost,
            cluster: ClusterSpec) -> float:
        """Data processed per second under the cluster time model."""
        return TimeModel(cluster, data_scale=DATA_SCALE).dps(input_bytes, cost)

    def modeled_seconds(self, cost: JobCost, cluster: ClusterSpec) -> float:
        """Modeled wall-clock seconds of the run at paper scale."""
        return TimeModel(cluster, data_scale=DATA_SCALE).job_time(cost)
