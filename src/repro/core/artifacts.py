"""The shared input plane: a memory-mapped BDGS artifact store.

BDGS input generation is a first-class phase of every run (paper
Section 4): the generator "scales up" seed data sets to the requested
volume before a workload executes.  At suite scale that generation
dominates cold wall clock, and it used to happen once *per process* --
every pool worker and every fresh CLI invocation regenerated every
corpus, graph, and table it touched.

This module makes each generated input exist exactly once, machine-wide:

* Every prepared data object (:class:`~repro.datagen.text.TextCorpus`,
  :class:`~repro.datagen.graph.Graph`,
  :class:`~repro.datagen.table.Table` and friends) carries a
  ``to_arrays()/from_arrays()`` codec splitting it into JSON-scalar
  metadata plus named numpy arrays.
* :class:`ArtifactStore` spills those arrays once to ``.npy`` files
  under a content-addressed directory and re-opens them with
  ``np.load(mmap_mode="r")`` -- so pool workers and repeat CLI runs map
  the *same page-cache pages* read-only instead of regenerating or
  pickling inputs.
* Artifacts are keyed by ``(kind, scale, seed, params...)`` under a
  *datagen-source fingerprint* (a content hash of every datagen module),
  so any change to a generator automatically invalidates its artifacts.
* Corrupt or truncated artifacts are discarded and regenerated, never
  raised (mirroring :mod:`repro.core.diskcache`); a size-capped LRU GC
  keeps the store bounded.

Layout::

    <root>/<datagen-fingerprint>/<sha256(key)>/meta.json
    <root>/<datagen-fingerprint>/<sha256(key)>/<array>.npy

The root defaults to ``$REPRO_ARTIFACT_DIR``, else
``<result-cache-root>/artifacts``.  ``REPRO_NO_ARTIFACTS=1`` disables
the default store entirely (the per-harness ``artifacts=False`` and the
CLI ``--no-artifacts`` flag do the same per run).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

import numpy as np

logger = logging.getLogger(__name__)

#: Environment variable overriding the artifact root directory.
ENV_ARTIFACT_DIR = "REPRO_ARTIFACT_DIR"

#: Environment variable disabling the default artifact store entirely.
ENV_NO_ARTIFACTS = "REPRO_NO_ARTIFACTS"

#: Environment variable capping the store size (megabytes) for the GC.
ENV_ARTIFACT_CAP = "REPRO_ARTIFACT_CAP_MB"

#: Default GC cap: 1 GiB of artifacts.
DEFAULT_CAP_BYTES = 1 << 30

_FINGERPRINT: Optional[str] = None


def default_artifact_dir() -> str:
    """The artifact root: env override, else ``<cache-root>/artifacts``."""
    env = os.environ.get(ENV_ARTIFACT_DIR)
    if env:
        return env
    from repro.core.diskcache import default_cache_dir

    return os.path.join(default_cache_dir(), "artifacts")


def datagen_fingerprint(refresh: bool = False) -> str:
    """Content hash of every datagen-relevant source file.

    Unlike :func:`repro.core.diskcache.code_fingerprint` (which covers
    the whole package, because any source edit can change a simulated
    *result*), artifacts only depend on the generators: the
    ``repro.datagen`` modules, the BDGS wiring in
    ``repro.workloads.inputs``, and this module (whose codec/key layout
    is part of the on-disk format).  Editing the simulator therefore
    keeps generated inputs warm; editing a generator invalidates them.
    """
    global _FINGERPRINT
    if _FINGERPRINT is not None and not refresh:
        return _FINGERPRINT
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    sources = [os.path.join(package_dir, "workloads", "inputs.py"),
               os.path.join(package_dir, "core", "artifacts.py")]
    datagen_dir = os.path.join(package_dir, "datagen")
    for name in sorted(os.listdir(datagen_dir)):
        if name.endswith(".py"):
            sources.append(os.path.join(datagen_dir, name))
    digest = hashlib.sha256()
    for path in sources:
        digest.update(os.path.relpath(path, package_dir).encode())
        with open(path, "rb") as handle:
            digest.update(handle.read())
    _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------

def _codecs() -> dict:
    """Class name -> class for every artifact-storable data object.

    Imported lazily: ``repro.datagen`` must not be a hard import cost of
    ``repro.core`` (and the datagen modules never import this one, so
    there is no cycle either way).
    """
    from repro.datagen.graph import Graph
    from repro.datagen.table import ECommerceData, ResumeSet, ReviewSet, Table
    from repro.datagen.text import TextCorpus

    return {cls.__name__: cls
            for cls in (TextCorpus, Graph, Table, ECommerceData, ReviewSet,
                        ResumeSet)}


def encode(obj) -> "tuple[str, dict, dict]":
    """Split ``obj`` into ``(codec_name, json_meta, named_arrays)``."""
    if isinstance(obj, np.ndarray):
        return "ndarray", {}, {"array": obj}
    name = type(obj).__name__
    if name not in _codecs():
        raise TypeError(f"no artifact codec for {name!r}")
    meta, arrays = obj.to_arrays()
    return name, meta, arrays


def decode(codec_name: str, meta: dict, arrays: dict):
    """Rebuild the object a codec split apart (arrays may be memmaps)."""
    if codec_name == "ndarray":
        return arrays["array"]
    cls = _codecs().get(codec_name)
    if cls is None:
        raise TypeError(f"unknown artifact codec {codec_name!r}")
    return cls.from_arrays(meta, arrays)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

@dataclass
class ArtifactEntry:
    """One stored artifact, as reported by :meth:`ArtifactStore.entries`."""

    path: str
    fingerprint: str
    key: str            # repr of the logical key (kind, scale, seed, ...)
    codec: str
    nbytes: int
    mtime: float

    @property
    def stale(self) -> bool:
        return self.fingerprint != datagen_fingerprint()


class ArtifactStore:
    """Content-addressed store of memory-mapped input artifacts.

    ``get`` re-opens arrays with ``np.load(mmap_mode="r")``: callers
    receive objects whose arrays are read-only views of the page cache,
    shared across every process that opens the same artifact.
    ``hits`` / ``misses`` count ``get`` outcomes for benchmarks/tests.
    """

    def __init__(self, root: str = None, fingerprint: str = None,
                 cap_bytes: int = None):
        self.root = root or default_artifact_dir()
        self.fingerprint = fingerprint or datagen_fingerprint()
        if cap_bytes is None:
            cap_mb = os.environ.get(ENV_ARTIFACT_CAP)
            cap_bytes = (int(float(cap_mb) * 1024 * 1024) if cap_mb
                         else DEFAULT_CAP_BYTES)
        self.cap_bytes = cap_bytes
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> str:
        """Where the current datagen fingerprint's artifacts live."""
        return os.path.join(self.root, self.fingerprint)

    def path(self, key) -> str:
        """The artifact directory for ``key`` (existing or not)."""
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return os.path.join(self.directory, digest)

    # -- read path -----------------------------------------------------------

    def get(self, key):
        """The decoded artifact for ``key``, arrays mmapped; None on miss."""
        from repro.obs.metrics import METRICS

        obj = self._load(key)
        if obj is None:
            self.misses += 1
            METRICS.counter("artifacts.misses").inc()
        else:
            self.hits += 1
            METRICS.counter("artifacts.hits").inc()
        return obj

    def _load(self, key):
        """Open and decode one artifact; corrupt entries are discarded
        and reported as misses, never raised (a truncated ``.npy`` from
        a killed writer must not poison a run)."""
        from repro.obs.metrics import METRICS

        directory = self.path(key)
        meta_path = os.path.join(directory, "meta.json")
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            arrays = {
                name: np.load(os.path.join(directory, name + ".npy"),
                              mmap_mode="r", allow_pickle=False)
                for name in meta["arrays"]
            }
            obj = decode(meta["codec"], meta["meta"], arrays)
        except FileNotFoundError:
            return None
        except Exception as exc:
            logger.warning("discarding corrupt artifact %s (%s: %s)",
                           directory, type(exc).__name__, exc)
            shutil.rmtree(directory, ignore_errors=True)
            METRICS.counter("artifacts.corrupt_entries").inc()
            return None
        # Touch for the LRU GC (best effort; never fails a read).
        try:
            os.utime(meta_path)
        except OSError:
            pass
        return obj

    def __contains__(self, key) -> bool:
        return os.path.exists(os.path.join(self.path(key), "meta.json"))

    # -- write path ----------------------------------------------------------

    def put(self, key, obj):
        """Spill ``obj`` once, atomically; returns the mmap-backed
        re-read (so even the generating process serves its input from
        the shared page cache).  Falls back to returning ``obj``
        unchanged if the store is unwritable -- artifacts accelerate
        runs, they never fail them."""
        from repro.obs.metrics import METRICS

        try:
            codec_name, meta, arrays = encode(obj)
        except TypeError:
            return obj  # no codec: the object simply is not storable
        directory = self.path(key)
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = tempfile.mkdtemp(dir=self.directory, prefix=".tmp-")
            try:
                for name, array in arrays.items():
                    np.save(os.path.join(tmp, name + ".npy"),
                            np.ascontiguousarray(array),
                            allow_pickle=False)
                with open(os.path.join(tmp, "meta.json"), "w",
                          encoding="utf-8") as handle:
                    json.dump({"key": repr(key), "codec": codec_name,
                               "meta": meta,
                               "arrays": sorted(arrays)}, handle)
                os.rename(tmp, directory)
            except (OSError, ValueError):
                shutil.rmtree(tmp, ignore_errors=True)
                if not os.path.isdir(directory):  # lost a benign race?
                    raise
        except (OSError, ValueError) as exc:
            logger.warning("artifact store unwritable at %s (%s: %s)",
                           directory, type(exc).__name__, exc)
            METRICS.counter("artifacts.put_failures").inc()
            return obj
        METRICS.counter("artifacts.puts").inc()
        self.gc()
        reopened = self._load(key)
        return obj if reopened is None else reopened

    # -- inventory and GC ----------------------------------------------------

    def entries(self) -> "list[ArtifactEntry]":
        """Every artifact under the root, all fingerprints included."""
        found = []
        try:
            fingerprints = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return found
        for fp in fingerprints:
            fp_dir = os.path.join(self.root, fp)
            if not os.path.isdir(fp_dir):
                continue
            for name in sorted(os.listdir(fp_dir)):
                directory = os.path.join(fp_dir, name)
                meta_path = os.path.join(directory, "meta.json")
                if name.startswith(".tmp-") or not os.path.isfile(meta_path):
                    continue
                try:
                    with open(meta_path, "r", encoding="utf-8") as handle:
                        meta = json.load(handle)
                    nbytes = sum(
                        os.path.getsize(os.path.join(directory, f))
                        for f in os.listdir(directory)
                    )
                    found.append(ArtifactEntry(
                        path=directory, fingerprint=fp,
                        key=meta.get("key", "?"),
                        codec=meta.get("codec", "?"),
                        nbytes=nbytes,
                        mtime=os.path.getmtime(meta_path),
                    ))
                except (OSError, ValueError):
                    continue  # unreadable entry; GC will collect it
        return found

    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self.entries())

    def gc(self, cap_bytes: int = None) -> "list[ArtifactEntry]":
        """Evict least-recently-used artifacts until the store fits
        ``cap_bytes`` (stale-fingerprint entries go first); returns the
        evicted entries."""
        cap = self.cap_bytes if cap_bytes is None else cap_bytes
        entries = self.entries()
        total = sum(entry.nbytes for entry in entries)
        if total <= cap:
            return []
        # Oldest first; current-fingerprint entries sort after stale
        # ones of the same age so live inputs survive the longest.
        entries.sort(key=lambda e: (not e.stale, e.mtime))
        removed = []
        for entry in entries:
            if total <= cap:
                break
            shutil.rmtree(entry.path, ignore_errors=True)
            total -= entry.nbytes
            removed.append(entry)
        return removed

    def clear(self) -> None:
        """Remove every artifact under the root, all fingerprints."""
        shutil.rmtree(self.root, ignore_errors=True)
        self.hits = 0
        self.misses = 0


# ---------------------------------------------------------------------------
# Default store and activation
# ---------------------------------------------------------------------------

_DEFAULT_STORES: dict = {}
_DEFAULT_LOCK = threading.Lock()


def default_store() -> Optional[ArtifactStore]:
    """The process-wide default store (None when disabled by env)."""
    if os.environ.get(ENV_NO_ARTIFACTS):
        return None
    root = default_artifact_dir()
    with _DEFAULT_LOCK:
        store = _DEFAULT_STORES.get(root)
        if store is None:
            store = _DEFAULT_STORES[root] = ArtifactStore(root=root)
    return store


def resolve_store(artifacts) -> Optional[ArtifactStore]:
    """Normalize a harness/CLI ``artifacts`` argument.

    None -> the env-resolved default store; True -> a fresh default
    store; False -> disabled; a string/path -> a store rooted there; an
    :class:`ArtifactStore` -> itself.
    """
    if artifacts is None:
        return default_store()
    if artifacts is False:
        return None
    if artifacts is True:
        return ArtifactStore()
    if isinstance(artifacts, (str, os.PathLike)):
        return ArtifactStore(root=os.fspath(artifacts))
    return artifacts


_ACTIVE = threading.local()


@contextmanager
def activated(store: Optional[ArtifactStore], ctx=None):
    """Scope in which :func:`current_store` resolves to ``store``.

    The harness wraps each ``workload.prepare`` call in this, so the
    BDGS input helpers (:mod:`repro.workloads.inputs`) see the store --
    and the profiling context, for ``artifact:*`` spans -- without
    threading either through every ``prepare`` signature.  Thread-local,
    so concurrent harnesses cannot observe each other's stores.
    """
    previous = getattr(_ACTIVE, "scope", None)
    _ACTIVE.scope = (store, ctx)
    try:
        yield store
    finally:
        _ACTIVE.scope = previous


def current_store() -> Optional[ArtifactStore]:
    """The store of the innermost :func:`activated` scope (None when no
    scope is active: bare ``prepare()`` calls never touch the disk)."""
    scope = getattr(_ACTIVE, "scope", None)
    return scope[0] if scope is not None else None


def current_ctx():
    """The profiling context of the active scope (never None)."""
    from repro.uarch.perfctx import NULL_CONTEXT

    scope = getattr(_ACTIVE, "scope", None)
    ctx = scope[1] if scope is not None else None
    return NULL_CONTEXT if ctx is None else ctx
