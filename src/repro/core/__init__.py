"""Core framework: workload interface, registry, harness, reporting.

Registry and harness names are provided lazily (PEP 562): they import
the workload implementations, which themselves import
``repro.core.workload`` -- eager imports here would be circular.
"""

from repro.core.report import render_series, render_table
from repro.core.workload import (
    DATA_SCALE,
    DPS,
    OFFLINE,
    ONLINE,
    OPS,
    REALTIME,
    RPS,
    SCALE_FACTORS,
    Workload,
    WorkloadInfo,
    WorkloadInput,
    WorkloadResult,
)

_REGISTRY_NAMES = {
    "WORKLOAD_CLASSES", "analytics_names", "by_app_type", "create", "info",
    "oltp_names", "service_names", "workload_names",
}
_HARNESS_NAMES = {"CharacterizationResult", "Harness"}


def __getattr__(name):
    if name in _REGISTRY_NAMES:
        from repro.core import registry

        return getattr(registry, name)
    if name in _HARNESS_NAMES:
        from repro.core import harness

        return getattr(harness, name)
    if name == "RunSpec":
        from repro.core.runspec import RunSpec

        return RunSpec
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


__all__ = [
    "CharacterizationResult",
    "DATA_SCALE",
    "DPS",
    "Harness",
    "OFFLINE",
    "ONLINE",
    "OPS",
    "REALTIME",
    "RPS",
    "RunSpec",
    "SCALE_FACTORS",
    "WORKLOAD_CLASSES",
    "Workload",
    "WorkloadInfo",
    "WorkloadInput",
    "WorkloadResult",
    "analytics_names",
    "by_app_type",
    "create",
    "info",
    "oltp_names",
    "render_series",
    "render_table",
    "service_names",
    "workload_names",
]
