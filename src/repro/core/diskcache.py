"""Persistent on-disk cache for characterization results.

A full figure regeneration re-runs the same (workload, scale, stack,
machine) points that the previous invocation already simulated; the
in-memory memo in :class:`~repro.core.harness.Harness` cannot help across
processes.  This cache makes repeated benchmark/figure/CLI runs
near-instant: results are pickled under a directory keyed by a
*code fingerprint* -- a content hash of every ``repro`` source file -- so
any change to the simulator or the workloads automatically invalidates
every cached result.

Layout::

    <root>/<fingerprint>/<sha256(key)>.pkl

The root defaults to ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro-bigdatabench``, else
``~/.cache/repro-bigdatabench``.  Entries from stale fingerprints are
left on disk (cheap, and useful when switching branches) until
:meth:`DiskCache.prune` or :meth:`DiskCache.clear` removes them.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import shutil
import tempfile
from typing import Optional

logger = logging.getLogger(__name__)

#: Environment variable overriding the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the default-harness cache entirely.
ENV_NO_CACHE = "REPRO_NO_CACHE"

_FINGERPRINT: Optional[str] = None


def default_cache_dir() -> str:
    """The cache root: env override, XDG cache dir, or ``~/.cache``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    if not xdg:
        xdg = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro-bigdatabench")


def code_fingerprint(refresh: bool = False) -> str:
    """Content hash of every ``repro`` source file (cached per process).

    Hashing relative paths together with file bytes means renames,
    additions, deletions, and edits all change the fingerprint, which is
    the cache's invalidation key.
    """
    global _FINGERPRINT
    if _FINGERPRINT is not None and not refresh:
        return _FINGERPRINT
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(package_dir)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, package_dir).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


class DiskCache:
    """Pickle-backed key/value store keyed by the code fingerprint.

    Keys are arbitrary ``repr``-able values (the harness uses tuples of
    workload name, scale, stack, machine/cluster reprs, and seed); values
    are arbitrary picklable objects.  ``hits`` / ``misses`` count ``get``
    outcomes for benchmarking and tests.
    """

    def __init__(self, root: str = None, fingerprint: str = None):
        self.root = root or default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> str:
        """Where the current fingerprint's entries live."""
        return os.path.join(self.root, self.fingerprint)

    def _path(self, key) -> str:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()
        return os.path.join(self.directory, digest + ".pkl")

    def get(self, key):
        """The cached value for ``key``, or None on a miss.

        Unreadable/corrupt entries are deleted and reported as misses.
        """
        from repro.obs.metrics import METRICS

        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            METRICS.counter("diskcache.misses").inc()
            return None
        except Exception as exc:
            # A corrupted or truncated entry (killed writer, disk error,
            # unpicklable bytes) must never poison a run: log it, drop
            # the file, and let the harness re-run the point.
            logger.warning("discarding corrupt cache entry %s (%s: %s)",
                           path, type(exc).__name__, exc)
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            METRICS.counter("diskcache.misses").inc()
            METRICS.counter("diskcache.corrupt_entries").inc()
            return None
        self.hits += 1
        METRICS.counter("diskcache.hits").inc()
        return value

    def put(self, key, value) -> str:
        """Store ``value`` under ``key`` atomically; returns the path."""
        from repro.obs.metrics import METRICS

        METRICS.counter("diskcache.puts").inc()
        path = self._path(key)
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".pkl"))
        except FileNotFoundError:
            return 0

    def clear(self) -> None:
        """Remove every entry under the root, all fingerprints included."""
        shutil.rmtree(self.root, ignore_errors=True)
        self.hits = 0
        self.misses = 0

    def prune(self) -> None:
        """Remove entries of *other* (stale) code fingerprints only."""
        try:
            subdirs = os.listdir(self.root)
        except FileNotFoundError:
            return
        for name in subdirs:
            if name != self.fingerprint:
                shutil.rmtree(os.path.join(self.root, name),
                              ignore_errors=True)


def resolve_cache(cache) -> Optional[DiskCache]:
    """Normalize a ``cache`` argument: a DiskCache instance, True (build
    the default cache), or None/False (no caching).

    Explicit identity checks, not truthiness: an *empty* DiskCache has
    ``len() == 0`` and must still count as a cache.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return DiskCache()
    return cache
