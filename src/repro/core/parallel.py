"""Process-parallel execution of characterization points.

The paper's evaluation matrix -- 19 workloads x several scales x multiple
stacks, each profiled independently (Section 6) -- is embarrassingly
parallel, but each point carries seconds of simulation.  This module fans
the points of :meth:`Harness.suite` / :meth:`Harness.sweep` that are
missing from both the in-memory memo and the disk cache across a
``ProcessPoolExecutor`` and merges the returned
:class:`CharacterizationResult` objects back into the calling harness'
memo, so every downstream consumer (figures, tables, export, ranking)
is unchanged.

Determinism: a worker runs exactly the code the serial path runs -- a
fresh deterministic ``prepare(scale, seed)`` plus a fresh
``PerfContext(machine, seed)`` per point -- so event counts and metrics
are bit-identical to a serial run regardless of worker count or
scheduling order.  Traced points carry their span tree back in the
pickled result, so worker spans land in the parent's memo exactly as a
serial run's would.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.harness import Harness
from repro.core.runspec import RunSpec


def default_jobs() -> int:
    """One worker per available CPU."""
    return os.cpu_count() or 1


# One harness per worker process, built once by the pool initializer so
# consecutive tasks in the same worker share prepared inputs.
_WORKER_HARNESS = None


def _init_worker(machine, cluster, seed, artifact_root=False) -> None:
    """Build the per-worker harness.

    ``artifact_root`` is the parent's artifact store root (or False when
    the parent runs without a store): workers open the *same* store, so
    a spec never implies per-worker datagen -- inputs the parent (or any
    sibling) already spilled are re-opened memory-mapped, sharing page
    cache across the whole pool.
    """
    global _WORKER_HARNESS
    _WORKER_HARNESS = Harness(machine=machine, cluster=cluster, seed=seed,
                              artifacts=artifact_root)


def _run_point(spec: RunSpec):
    """Execute one resolved RunSpec in a worker process."""
    return _WORKER_HARNESS.run(spec)


def _mp_context():
    """Prefer fork (cheap on Linux; workers inherit loaded modules)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def parallel_characterize(harness, specs, jobs: int = None) -> None:
    """Fill ``harness``' memo for every missing point of ``specs``.

    ``specs`` is an iterable of :class:`RunSpec` objects or legacy
    ``(name, scale, stack)`` triples.  Points already memoized or
    present in the disk cache are absorbed without spawning workers; if
    at most one point is actually missing, it is left for the caller's
    serial path (a pool would only add overhead).
    """
    jobs = jobs or harness.jobs
    missing = []
    seen = set()
    for spec in specs:
        spec = harness._coerce(spec).resolved(harness)
        key = spec.memo_key()
        if key in harness._cache or key in seen:
            continue
        cached = harness._load_cached(spec)
        if cached is not None:
            harness._cache[key] = cached
            continue
        seen.add(key)
        missing.append((key, spec))
    if len(missing) <= 1 or jobs <= 1:
        return

    workers = min(jobs, len(missing))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=_init_worker,
        initargs=(harness.machine, harness.cluster, harness.seed,
                  harness.artifacts.root if harness.artifacts else False),
    ) as pool:
        outcomes = list(pool.map(_run_point, [spec for _, spec in missing]))
    for (key, spec), outcome in zip(missing, outcomes):
        harness._cache[key] = outcome
        harness._store_cached(spec, outcome)


class ParallelHarness(Harness):
    """A :class:`~repro.core.harness.Harness` defaulting to one worker
    per CPU -- ``ParallelHarness()`` is ``Harness(jobs=os.cpu_count())``."""

    def __init__(self, *args, jobs: int = None, **kwargs):
        super().__init__(*args, jobs=jobs or default_jobs(), **kwargs)
