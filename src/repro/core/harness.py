"""The characterization harness: run workloads under the profiler.

This is the reproduction's equivalent of the paper's experimental rig
(Section 6.1): pick a workload, a data scale, a software stack, and a
machine configuration; prepare the input with BDGS; execute; collect the
perf events, the modeled report, and the user-perceivable metric.
Results are memoized so figure generators can share runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.core import registry
from repro.core.workload import SCALE_FACTORS, WorkloadResult
from repro.uarch.events import ProfileReport
from repro.uarch.hierarchy import MachineConfig, XEON_E5645
from repro.uarch.perfctx import PerfContext


@dataclass
class CharacterizationResult:
    """One profiled workload run."""

    workload: str
    scale: int
    stack: str
    machine: str
    report: ProfileReport
    result: WorkloadResult

    @property
    def events(self):
        return self.report.events

    @property
    def mips(self) -> float:
        """Aggregate MIPS (Figure 3-1).

        Service workloads report throughput-derived MIPS; batch workloads
        divide their (paper-scale) instruction count by the modeled
        wall-clock time, which includes the fixed per-job overheads --
        the term the paper's rising MIPS curves amortize.
        """
        service_mips = self.result.details.get("mips")
        if service_mips is not None:
            return service_mips
        seconds = self.modeled_seconds
        if seconds <= 0:
            return self.report.mips
        from repro.core.workload import DATA_SCALE

        return self.events.instructions * DATA_SCALE / seconds / 1e6

    @property
    def modeled_seconds(self) -> float:
        from repro.cluster.timemodel import TimeModel
        from repro.core.workload import DATA_SCALE

        if not self.result.cost.phases:
            return 0.0
        return TimeModel(data_scale=DATA_SCALE).job_time(self.result.cost)


class Harness:
    """Runs and memoizes profiled workload executions.

    ``jobs`` > 1 fans :meth:`suite` / :meth:`sweep` points across a
    process pool (see :mod:`repro.core.parallel`); results are merged
    back into the in-memory memo, so downstream figure/table code is
    unchanged and event counts are bit-identical to the serial path.
    ``cache`` attaches a persistent :class:`~repro.core.diskcache.DiskCache`
    (pass a DiskCache, or True for the default location) so results
    survive across processes; it is invalidated automatically when any
    ``repro`` source file changes.
    """

    def __init__(self, machine: MachineConfig = XEON_E5645,
                 cluster: ClusterSpec = PAPER_CLUSTER, seed: int = 0,
                 jobs: int = 1, cache=None):
        from repro.core.diskcache import resolve_cache

        self.machine = machine
        self.cluster = cluster
        self.seed = seed
        self.jobs = max(1, int(jobs or 1))
        self.cache = resolve_cache(cache)
        self._cache: dict = {}
        self._inputs: dict = {}

    def characterize(self, name: str, scale: int = 1, stack: str = None,
                     machine: MachineConfig = None) -> CharacterizationResult:
        """Run one workload at one scale on one machine, profiled."""
        machine = machine or self.machine
        workload = registry.create(name)
        stack_used = workload.check_stack(stack)
        key = (name, scale, stack_used, machine.name)
        if key in self._cache:
            return self._cache[key]
        outcome = self._load_cached(name, scale, stack_used, machine)
        if outcome is None:
            outcome = self._execute(workload, name, scale, stack_used, machine)
            self._store_cached(outcome, machine)
        self._cache[key] = outcome
        return outcome

    def sweep(self, name: str, scales=SCALE_FACTORS, stack: str = None) -> list:
        """The paper's data-volume sweep (Table 6 geometry)."""
        return self.characterize_many([(name, s, stack) for s in scales])

    def suite(self, names=None, scale: int = 1) -> list:
        """Characterize many workloads at one scale (Figures 4-6 input)."""
        names = names or registry.workload_names()
        return self.characterize_many([(name, scale, None) for name in names])

    def characterize_many(self, specs) -> list:
        """Characterize ``(name, scale, stack)`` triples, in order.

        With ``jobs`` > 1 the points missing from both the memo and the
        disk cache run concurrently in worker processes first; the final
        (ordered) result list is then assembled from the memo.
        """
        specs = list(specs)
        if self.jobs > 1 and len(specs) > 1:
            from repro.core.parallel import parallel_characterize

            parallel_characterize(self, specs)
        return [self.characterize(name, scale=scale, stack=stack)
                for name, scale, stack in specs]

    # -- execution and persistent caching --------------------------------------

    def _execute(self, workload, name: str, scale: int, stack_used: str,
                 machine: MachineConfig) -> CharacterizationResult:
        """Actually run one profiled point (no memo, no disk cache)."""
        prepared = self._prepared(name, scale, workload=workload)
        ctx = PerfContext(machine, seed=self.seed)
        result = workload.run(prepared, ctx=ctx, cluster=self.cluster,
                              stack=stack_used)
        report = ctx.finalize(
            cores_used=self.cluster.total_cores,
            metadata={"workload": name, "scale": scale, "stack": stack_used},
        )
        return CharacterizationResult(
            workload=name, scale=scale, stack=stack_used,
            machine=machine.name, report=report, result=result,
        )

    def _disk_key(self, name: str, scale: int, stack_used: str,
                  machine: MachineConfig) -> tuple:
        """The persistent-cache key: every input that shapes a result.

        The machine and cluster go in by repr so custom configurations
        do not collide with the presets sharing their name; the code
        fingerprint is handled by the cache itself.
        """
        return ("characterize", name, scale, stack_used,
                repr(machine), repr(self.cluster), self.seed)

    def _load_cached(self, name: str, scale: int, stack_used: str,
                     machine: MachineConfig):
        if self.cache is None:
            return None
        return self.cache.get(self._disk_key(name, scale, stack_used, machine))

    def _store_cached(self, outcome: CharacterizationResult,
                      machine: MachineConfig) -> None:
        if self.cache is None:
            return
        self.cache.put(
            self._disk_key(outcome.workload, outcome.scale, outcome.stack,
                           machine),
            outcome,
        )

    def _prepared(self, name: str, scale: int, workload=None):
        key = (name, scale)
        if key not in self._inputs:
            if workload is None:
                workload = registry.create(name)
            self._inputs[key] = workload.prepare(scale, seed=self.seed)
        return self._inputs[key]
