"""The characterization harness: run workloads under the profiler.

This is the reproduction's equivalent of the paper's experimental rig
(Section 6.1): pick a workload, a data scale, a software stack, and a
machine configuration; prepare the input with BDGS; execute; collect the
perf events, the modeled report, and the user-perceivable metric.
Results are memoized so figure generators can share runs.

Every run is described by a :class:`~repro.core.runspec.RunSpec`; the
kwargs signatures below are thin shims over it.  Traced runs
(``trace=True``) additionally record a span tree (see
:mod:`repro.obs.trace`) stored on the result -- per-engine-phase wall
time and exact perf-event deltas -- which survives the memo, the disk
cache, and process-parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.core import registry
from repro.core.runspec import RunSpec
from repro.core.workload import SCALE_FACTORS, WorkloadResult
from repro.obs.metrics import METRICS
from repro.obs.trace import Span, Tracer
from repro.uarch.events import ProfileReport
from repro.uarch.hierarchy import MachineConfig, XEON_E5645
from repro.uarch.perfctx import PerfContext


@dataclass
class CharacterizationResult:
    """One profiled workload run."""

    workload: str
    scale: int
    stack: str
    machine: str
    report: ProfileReport
    result: WorkloadResult
    #: Span tree of a traced run (None when tracing was off).
    trace: Optional[Span] = None
    #: Ordered chaos flight record of a fault-injected run -- a tuple of
    #: :class:`~repro.faults.inject.FaultEvent` (None when no fault plan
    #: was attached).  Survives the memo, the disk cache, and process
    #: pools, so event sequences can be compared across execution modes.
    fault_events: Optional[tuple] = None

    @property
    def events(self):
        return self.report.events

    @property
    def mips(self) -> float:
        """Aggregate MIPS (Figure 3-1).

        Service workloads report throughput-derived MIPS; batch workloads
        divide their (paper-scale) instruction count by the modeled
        wall-clock time, which includes the fixed per-job overheads --
        the term the paper's rising MIPS curves amortize.
        """
        service_mips = self.result.details.get("mips")
        if service_mips is not None:
            return service_mips
        seconds = self.modeled_seconds
        if seconds <= 0:
            return self.report.mips
        from repro.core.workload import DATA_SCALE

        return self.events.instructions * DATA_SCALE / seconds / 1e6

    @property
    def modeled_seconds(self) -> float:
        from repro.cluster.timemodel import TimeModel
        from repro.core.workload import DATA_SCALE

        if not self.result.cost.phases:
            return 0.0
        return TimeModel(data_scale=DATA_SCALE).job_time(self.result.cost)


class Harness:
    """Runs and memoizes profiled workload executions.

    ``jobs`` > 1 fans :meth:`suite` / :meth:`sweep` points across a
    process pool (see :mod:`repro.core.parallel`); results are merged
    back into the in-memory memo, so downstream figure/table code is
    unchanged and event counts are bit-identical to the serial path.
    ``cache`` attaches a persistent :class:`~repro.core.diskcache.DiskCache`
    (pass a DiskCache, or True for the default location) so results
    survive across processes; it is invalidated automatically when any
    ``repro`` source file changes.  ``trace`` turns on span tracing for
    every run this harness executes (individual runs can also request it
    via ``RunSpec(trace=True)``).  ``artifacts`` controls the shared
    input plane (:mod:`repro.core.artifacts`): the default ``None``
    attaches the machine-wide store (disable with ``REPRO_NO_ARTIFACTS``),
    ``False`` disables it, and a path / store instance pins a specific
    root.  Prepared inputs then spill once to memory-mapped ``.npy``
    artifacts and every later preparation -- in this process or any
    worker -- re-opens the same pages zero-copy.
    """

    #: In-memory prepared-input cache bound when an artifact store is
    #: attached (misses re-open the mmap; pages stay in the OS cache).
    INPUT_CACHE_SIZE = 4

    def __init__(self, machine: MachineConfig = XEON_E5645,
                 cluster: ClusterSpec = PAPER_CLUSTER, seed: int = 0,
                 jobs: int = 1, cache=None, trace: bool = False,
                 artifacts=None, serving=None):
        from repro.core.artifacts import resolve_store
        from repro.core.diskcache import resolve_cache

        self.machine = machine
        self.cluster = cluster
        self.seed = seed
        self.jobs = max(1, int(jobs or 1))
        self.cache = resolve_cache(cache)
        self.trace = bool(trace)
        self.artifacts = resolve_store(artifacts)
        if serving is not None:
            from repro.serving.load import ServingOptions

            serving = ServingOptions.parse(serving)
        #: Default serving options (load profile + recovery policy) for
        #: online-service workloads; RunSpec.serving overrides per run.
        self.serving = serving
        self._cache: dict = {}
        self._inputs: dict = {}

    # -- the RunSpec API -------------------------------------------------------

    def run(self, spec: RunSpec) -> CharacterizationResult:
        """Run one fully described point (memo -> disk cache -> execute)."""
        spec = spec.resolved(self)
        key = spec.memo_key()
        METRICS.counter("harness.runs").inc()
        if key in self._cache:
            METRICS.counter("harness.memo_hits").inc()
            return self._cache[key]
        outcome = self._load_cached(spec)
        if outcome is None:
            outcome = self._execute(spec)
            self._store_cached(spec, outcome)
        self._cache[key] = outcome
        return outcome

    def run_many(self, specs, jobs: Optional[int] = None) -> list:
        """Run many points, in order; ``jobs`` > 1 fans missing ones out.

        ``specs`` may mix :class:`RunSpec` objects and legacy
        ``(name, scale, stack)`` triples.  ``jobs`` overrides the
        harness-level worker count for this call only.
        """
        specs = [self._coerce(spec) for spec in specs]
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        if jobs > 1 and len(specs) > 1:
            from repro.core.parallel import parallel_characterize

            parallel_characterize(self, specs, jobs=jobs)
        return [self.run(spec) for spec in specs]

    # -- kwargs shims (the pre-RunSpec surface; no caller breaks) --------------

    def characterize(self, name, scale: int = 1, stack: Optional[str] = None,
                     machine: Optional[MachineConfig] = None,
                     trace: bool = False) -> CharacterizationResult:
        """Run one workload at one scale on one machine, profiled.

        ``name`` may also be a ready-made :class:`RunSpec` (the kwargs
        are then ignored).
        """
        if isinstance(name, RunSpec):
            return self.run(name)
        return self.run(RunSpec(workload=name, scale=scale, stack=stack,
                                machine=machine, trace=trace))

    def sweep(self, name: str, scales=SCALE_FACTORS,
              stack: Optional[str] = None,
              jobs: Optional[int] = None) -> list:
        """The paper's data-volume sweep (Table 6 geometry)."""
        return self.run_many(
            [RunSpec(workload=name, scale=s, stack=stack) for s in scales],
            jobs=jobs)

    def suite(self, names=None, scale: int = 1,
              jobs: Optional[int] = None) -> list:
        """Characterize many workloads at one scale (Figures 4-6 input)."""
        names = names or registry.workload_names()
        return self.run_many(
            [RunSpec(workload=name, scale=scale) for name in names],
            jobs=jobs)

    def characterize_many(self, specs) -> list:
        """Characterize RunSpecs or ``(name, scale, stack)`` triples, in
        order (alias of :meth:`run_many`, kept for existing callers)."""
        return self.run_many(specs)

    # -- execution and persistent caching --------------------------------------

    def _coerce(self, spec) -> RunSpec:
        if isinstance(spec, RunSpec):
            return spec
        name, scale, stack = spec
        return RunSpec(workload=name, scale=scale, stack=stack)

    def _execute(self, spec: RunSpec) -> CharacterizationResult:
        """Actually run one profiled point (no memo, no disk cache)."""
        METRICS.counter("harness.executions").inc()
        workload = registry.create(spec.workload)
        tracer = Tracer(spec.workload) if spec.trace else None
        ctx = PerfContext(spec.machine, seed=spec.seed, tracer=tracer)
        # The run seed rides the context so engines without their own
        # seed plumbing (e.g. the serving load generator) stay keyed to
        # the spec -- bit-identical serially and across worker pools.
        ctx.seed = spec.seed
        if spec.serving is not None:
            ctx.serving = spec.serving
        injector = None
        if spec.faults is not None:
            from repro.faults.inject import FaultInjector

            injector = FaultInjector(spec.faults, seed=spec.seed)
            ctx.faults = injector
        with ctx.span(f"characterize:{spec.workload}", category="harness",
                      scale=spec.scale, stack=spec.stack) as run_span:
            if injector is not None:
                run_span.set("faults", str(spec.faults))
            with ctx.span(f"prepare:{spec.workload}", category="datagen"):
                prepared = self._prepared(spec.workload, spec.scale,
                                          seed=spec.seed, workload=workload,
                                          ctx=ctx)
            with ctx.span(f"run:{spec.workload}", category="harness"):
                result = workload.run(prepared, ctx=ctx, cluster=spec.cluster,
                                      stack=spec.stack)
        report = ctx.finalize(
            cores_used=spec.cluster.total_cores,
            metadata={"workload": spec.workload, "scale": spec.scale,
                      "stack": spec.stack},
        )
        trace = tracer.finish() if tracer is not None else None
        outcome = CharacterizationResult(
            workload=spec.workload, scale=spec.scale, stack=spec.stack,
            machine=spec.machine.name, report=report, result=result,
            trace=trace,
            fault_events=injector.event_log() if injector is not None else None,
        )
        if trace is not None:
            trace.set("modeled_seconds", outcome.modeled_seconds)
            trace.set("metric", f"{result.metric_name}={result.metric_value:.6g}")
        return outcome

    def _load_cached(self, spec: RunSpec):
        if self.cache is None:
            return None
        outcome = self.cache.get(spec.cache_key())
        if outcome is not None:
            METRICS.counter("harness.disk_hits").inc()
        return outcome

    def _store_cached(self, spec: RunSpec,
                      outcome: CharacterizationResult) -> None:
        if self.cache is None:
            return
        self.cache.put(spec.cache_key(), outcome)

    def _prepared(self, name: str, scale: int, seed: int = None, workload=None,
                  ctx=None):
        from repro.core import artifacts

        seed = self.seed if seed is None else seed
        key = (name, scale, seed)
        if key in self._inputs:
            # LRU touch: move the hit to the back of insertion order.
            prepared = self._inputs.pop(key)
            self._inputs[key] = prepared
            return prepared
        if workload is None:
            workload = registry.create(name)
        with artifacts.activated(self.artifacts, ctx):
            prepared = workload.prepare(scale, seed=seed)
        self._inputs[key] = prepared
        # With a store attached the memo is just a hot-set accelerator --
        # evictions re-open the mmap'd artifact, so bound it; without a
        # store it is the only thing preventing regeneration, keep it all.
        if self.artifacts is not None:
            while len(self._inputs) > self.INPUT_CACHE_SIZE:
                self._inputs.pop(next(iter(self._inputs)))
        return prepared
