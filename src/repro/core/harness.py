"""The characterization harness: run workloads under the profiler.

This is the reproduction's equivalent of the paper's experimental rig
(Section 6.1): pick a workload, a data scale, a software stack, and a
machine configuration; prepare the input with BDGS; execute; collect the
perf events, the modeled report, and the user-perceivable metric.
Results are memoized so figure generators can share runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.core import registry
from repro.core.workload import SCALE_FACTORS, WorkloadResult
from repro.uarch.events import ProfileReport
from repro.uarch.hierarchy import MachineConfig, XEON_E5645
from repro.uarch.perfctx import PerfContext


@dataclass
class CharacterizationResult:
    """One profiled workload run."""

    workload: str
    scale: int
    stack: str
    machine: str
    report: ProfileReport
    result: WorkloadResult

    @property
    def events(self):
        return self.report.events

    @property
    def mips(self) -> float:
        """Aggregate MIPS (Figure 3-1).

        Service workloads report throughput-derived MIPS; batch workloads
        divide their (paper-scale) instruction count by the modeled
        wall-clock time, which includes the fixed per-job overheads --
        the term the paper's rising MIPS curves amortize.
        """
        service_mips = self.result.details.get("mips")
        if service_mips is not None:
            return service_mips
        seconds = self.modeled_seconds
        if seconds <= 0:
            return self.report.mips
        from repro.core.workload import DATA_SCALE

        return self.events.instructions * DATA_SCALE / seconds / 1e6

    @property
    def modeled_seconds(self) -> float:
        from repro.cluster.timemodel import TimeModel
        from repro.core.workload import DATA_SCALE

        if not self.result.cost.phases:
            return 0.0
        return TimeModel(data_scale=DATA_SCALE).job_time(self.result.cost)


class Harness:
    """Runs and memoizes profiled workload executions."""

    def __init__(self, machine: MachineConfig = XEON_E5645,
                 cluster: ClusterSpec = PAPER_CLUSTER, seed: int = 0):
        self.machine = machine
        self.cluster = cluster
        self.seed = seed
        self._cache: dict = {}
        self._inputs: dict = {}

    def characterize(self, name: str, scale: int = 1, stack: str = None,
                     machine: MachineConfig = None) -> CharacterizationResult:
        """Run one workload at one scale on one machine, profiled."""
        machine = machine or self.machine
        workload = registry.create(name)
        stack_used = workload.check_stack(stack)
        key = (name, scale, stack_used, machine.name)
        if key in self._cache:
            return self._cache[key]

        prepared = self._prepared(name, scale)
        ctx = PerfContext(machine, seed=self.seed)
        result = workload.run(prepared, ctx=ctx, cluster=self.cluster,
                              stack=stack_used)
        report = ctx.finalize(
            cores_used=self.cluster.total_cores,
            metadata={"workload": name, "scale": scale, "stack": stack_used},
        )
        outcome = CharacterizationResult(
            workload=name, scale=scale, stack=stack_used,
            machine=machine.name, report=report, result=result,
        )
        self._cache[key] = outcome
        return outcome

    def sweep(self, name: str, scales=SCALE_FACTORS, stack: str = None) -> list:
        """The paper's data-volume sweep (Table 6 geometry)."""
        return [self.characterize(name, scale=s, stack=stack) for s in scales]

    def suite(self, names=None, scale: int = 1) -> list:
        """Characterize many workloads at one scale (Figures 4-6 input)."""
        names = names or registry.workload_names()
        return [self.characterize(name, scale=scale) for name in names]

    def _prepared(self, name: str, scale: int):
        key = (name, scale)
        if key not in self._inputs:
            workload = registry.create(name)
            self._inputs[key] = workload.prepare(scale, seed=self.seed)
        return self._inputs[key]
