"""BigDataBench reproduction: a big data benchmark suite from internet services.

A from-scratch Python reproduction of "BigDataBench: a Big Data Benchmark
Suite from Internet Services" (Wang et al., HPCA 2014): the 19-workload
suite, the BDGS synthetic data generators, the software-stack substrates
the workloads run on (MapReduce, Spark-like RDDs, MPI/BSP, an HBase-like
NoSQL store, a Hive-like SQL engine, and online-serving frameworks), and
a micro-architecture characterization harness standing in for the paper's
hardware performance counters.

Quick start::

    from repro import suite
    result = suite.characterize("WordCount", scale=1)
    print(result.events.l1i_mpki)

See ``examples/quickstart.py`` and DESIGN.md for the full tour.
"""

__version__ = "1.0.0"
