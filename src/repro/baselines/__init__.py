"""Traditional benchmark baselines: HPCC, PARSEC, SPECINT, SPECFP.

Reimplemented kernels instrumented with the same profiling API as the
big data engines, so every comparison figure (4, 5, 6) measures both
worlds under one model.
"""

from repro.baselines.hpcc import HPCC_KERNELS, hpcc_suite
from repro.baselines.kernels import (
    BaselineKernel,
    run_kernel,
    run_suite,
    suite_average,
)
from repro.baselines.parsec import PARSEC_KERNELS, parsec_suite
from repro.baselines.spec import (
    SPECFP_KERNELS,
    SPECINT_KERNELS,
    specfp_suite,
    specint_suite,
)

#: Suite name -> factory, in the order the paper's figures list them.
TRADITIONAL_SUITES = {
    "HPCC": hpcc_suite,
    "PARSEC": parsec_suite,
    "SPECFP": specfp_suite,
    "SPECINT": specint_suite,
}

__all__ = [
    "BaselineKernel",
    "HPCC_KERNELS",
    "PARSEC_KERNELS",
    "SPECFP_KERNELS",
    "SPECINT_KERNELS",
    "TRADITIONAL_SUITES",
    "hpcc_suite",
    "parsec_suite",
    "run_kernel",
    "run_suite",
    "specfp_suite",
    "specint_suite",
    "suite_average",
]
