"""HPCC 1.4 kernels: HPL, STREAM, PTRANS, RandomAccess, DGEMM, FFT, COMM.

Dense numerical kernels with tight loops and (mostly) cache-blocked
working sets: the floating-point-intensive, instruction-cache-friendly
pole of the paper's comparison (HPCC on the E5645: FP intensity ~3.3,
L1I MPKI ~0.3, ITLB MPKI ~0.006).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.kernels import BaselineKernel, MB
from repro.uarch.codemodel import HPC_KERNEL

#: Charges are issued once per functional element scaled by this factor,
#: standing for the much longer real runs (ratios are size-invariant).
WORK_SCALE = 64


class HplKernel(BaselineKernel):
    """LU factorization with partial pivoting (the Linpack core)."""

    name = "HPL"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, n: int = 256):
        self.n = n

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(0)
        a = rng.random((self.n, self.n)) + np.eye(self.n) * self.n
        lu = a.copy()
        n = self.n
        for k in range(n - 1):
            pivot = int(np.argmax(np.abs(lu[k:, k]))) + k
            lu[[k, pivot]] = lu[[pivot, k]]
            lu[k + 1:, k] /= lu[k, k]
            lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
        flops = (2.0 / 3.0) * n ** 3 * WORK_SCALE
        # Blocked factorization: panels stay L1/L2 resident.
        ctx.touch("hpl:block", 192 * 1024)
        ctx.touch("hpl:panel", 10 * 1024 * 1024)
        ctx.fp_ops(flops)
        ctx.int_ops(0.45 * flops)
        ctx.branch_ops(0.04 * flops)
        ctx.seq_read("hpl:block", flops * 0.08, elem=8)
        # Panel sweeps: L3-resident on the E5645, DRAM-bound on the
        # E5310 -- the mechanism behind the paper's C5 observation.
        ctx.seq_read("hpl:panel", flops * 1.0, elem=8)
        ctx.seq_write("hpl:block", flops * 0.03, elem=8)
        return {"n": n, "diag_min": float(np.abs(np.diag(lu)).min())}


class StreamKernel(BaselineKernel):
    """STREAM triad: a = b + s*c over arrays far larger than any cache."""

    name = "STREAM"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, elements: int = 120_000):
        self.elements = elements

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(1)
        b = rng.random(self.elements)
        c = rng.random(self.elements)
        a = b + 3.0 * c
        n = self.elements * WORK_SCALE
        nbytes = n * 8
        ctx.touch("stream:arrays", 3 * nbytes)
        ctx.fp_ops(2.0 * n)
        ctx.int_ops(1.0 * n)
        ctx.branch_ops(0.06 * n)
        ctx.seq_read("stream:arrays", 2 * nbytes, elem=8)
        ctx.seq_write("stream:arrays", nbytes, elem=8)
        return {"checksum": float(a.sum())}


class PtransKernel(BaselineKernel):
    """Parallel matrix transpose: strided reads, sequential writes."""

    name = "PTRANS"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, n: int = 160):
        self.n = n

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(2)
        a = rng.random((self.n, self.n))
        t = a.T.copy()
        elems = self.n * self.n * WORK_SCALE
        ctx.touch("ptrans:matrix", elems * 8)
        ctx.fp_ops(1.0 * elems)
        ctx.int_ops(1.4 * elems)
        ctx.stride_read("ptrans:matrix", elems, stride=self.n * 8, elem=8)
        ctx.seq_write("ptrans:matrix", elems * 8, elem=8)
        return {"symmetric_error": float(np.abs(t.T - a).max())}


class RandomAccessKernel(BaselineKernel):
    """GUPS: random xor-updates into a giant table."""

    name = "RandomAccess"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, updates: int = 34_000):
        self.updates = updates

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(3)
        table = np.arange(1 << 12, dtype=np.uint64)
        idx = rng.integers(0, len(table), size=self.updates // 16)
        np.bitwise_xor.at(table, idx, idx.astype(np.uint64))
        n = self.updates * WORK_SCALE
        ctx.touch("gups:table", 64 * MB)
        ctx.int_ops(6.0 * n)
        ctx.branch_ops(0.4 * n)
        ctx.rand_read("gups:table", n)
        ctx.rand_write("gups:table", n)
        return {"checksum": int(table.sum() & 0xFFFF)}


class DgemmKernel(BaselineKernel):
    """Blocked dense matrix multiply (near-peak FP)."""

    name = "DGEMM"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, n: int = 256):
        self.n = n

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(4)
        a = rng.random((self.n, self.n))
        b = rng.random((self.n, self.n))
        c = a @ b
        flops = 2.0 * self.n ** 3 * WORK_SCALE
        ctx.touch("dgemm:block", 96 * 1024)
        ctx.fp_ops(flops)
        ctx.int_ops(0.30 * flops)
        ctx.branch_ops(0.02 * flops)
        ctx.seq_read("dgemm:block", flops * 0.05, elem=8)
        return {"trace": float(np.trace(c))}


class FftKernel(BaselineKernel):
    """1-D complex FFT (butterfly passes with strided access)."""

    name = "FFT"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, n: int = 1 << 16):
        self.n = n

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(5)
        x = rng.random(self.n) + 1j * rng.random(self.n)
        spectrum = np.fft.fft(x)
        n = self.n * WORK_SCALE
        passes = np.log2(self.n)
        ctx.touch("fft:data", n * 16)
        ctx.fp_ops(5.0 * n * passes)
        ctx.int_ops(2.0 * n * passes)
        ctx.branch_ops(0.2 * n * passes)
        # Blocked butterflies: only a fraction of accesses leave the
        # cache-resident tile.
        for p in range(int(passes)):
            ctx.stride_read("fft:data", n / 24, stride=(1 << p) * 16, elem=16)
        roundtrip = np.fft.ifft(spectrum)
        return {"max_error": float(np.abs(roundtrip - x).max())}


class CommKernel(BaselineKernel):
    """b_eff-style communication: bandwidth/latency message sweeps."""

    name = "COMM"
    suite = "HPCC"
    code_profile = HPC_KERNEL

    def __init__(self, total_bytes: int = 2 * MB):
        self.total_bytes = total_bytes

    def execute(self, ctx) -> dict:
        nbytes = self.total_bytes * 4
        ctx.touch("comm:buffers", 32 * MB)
        ctx.int_ops(0.8 * nbytes / 8)
        ctx.branch_ops(0.05 * nbytes / 8)
        ctx.seq_read("comm:buffers", nbytes, elem=8)
        ctx.seq_write("comm:buffers", nbytes, elem=8)
        return {"bytes": nbytes}


HPCC_KERNELS = (
    HplKernel, StreamKernel, PtransKernel, RandomAccessKernel,
    DgemmKernel, FftKernel, CommKernel,
)


def hpcc_suite() -> list:
    """All seven HPCC benchmarks, as run in the paper."""
    return [cls() for cls in HPCC_KERNELS]
