"""PARSEC 3.0 kernels: the twelve multithreaded programs (native inputs).

Each kernel reproduces the computational heart and access pattern of its
namesake: mixed FP/integer work, moderate working sets, richer code than
HPCC but far shallower than a JVM stack (paper: PARSEC L1I MPKI ~2.9,
FP intensity ~1.2 on the E5645).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.kernels import BaselineKernel, MB
from repro.uarch.codemodel import PARSEC_KERNEL

WORK_SCALE = 64


class _ParsecKernel(BaselineKernel):
    suite = "PARSEC"
    code_profile = PARSEC_KERNEL


class Blackscholes(_ParsecKernel):
    """Option pricing: pure FP formula evaluation over a portfolio."""

    name = "blackscholes"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(10)
        n = 200_000
        s = rng.uniform(20, 120, n)
        k = rng.uniform(20, 120, n)
        t = rng.uniform(0.1, 2.0, n)
        sigma, r = 0.3, 0.02
        d1 = (np.log(s / k) + (r + sigma ** 2 / 2) * t) / (sigma * np.sqrt(t))
        price = s * _phi(d1) - k * np.exp(-r * t) * _phi(d1 - sigma * np.sqrt(t))
        work = n * WORK_SCALE
        ctx.touch("bs:portfolio", work * 40)
        ctx.fp_ops(110.0 * work)
        ctx.int_ops(24.0 * work)
        ctx.branch_ops(4.0 * work)
        ctx.seq_read("bs:portfolio", work * 40, elem=40)
        return {"mean_price": float(price.mean())}


class Bodytrack(_ParsecKernel):
    """Particle-filter pose tracking: FP likelihoods + image reads."""

    name = "bodytrack"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(11)
        particles = rng.random((4000, 8))
        weights = np.exp(-((particles - 0.5) ** 2).sum(axis=1))
        work = len(particles) * WORK_SCALE * 30
        ctx.touch("bt:frames", 48 * MB)
        ctx.fp_ops(60.0 * work)
        ctx.int_ops(40.0 * work)
        ctx.branch_ops(8.0 * work)
        ctx.seq_read("bt:frames", work * 1.5, elem=8)
        ctx.skewed_read("bt:frames", 3.0 * work, hot_fraction=0.02, hot_prob=0.8)
        return {"weight_sum": float(weights.sum())}


class Canneal(_ParsecKernel):
    """Simulated annealing of a netlist: pointer-chasing, int heavy."""

    name = "canneal"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(12)
        positions = rng.random((20_000, 2))
        a = rng.integers(0, len(positions), 40_000)
        b = rng.integers(0, len(positions), 40_000)
        cost = float(np.abs(positions[a] - positions[b]).sum())
        work = len(a) * WORK_SCALE * 8
        ctx.touch("canneal:netlist", 8 * MB)
        ctx.int_ops(55.0 * work)
        ctx.fp_ops(9.0 * work)
        ctx.branch_ops(14.0 * work)
        ctx.skewed_read("canneal:netlist", 2.2 * work,
                        hot_fraction=0.12, hot_prob=0.75)
        ctx.rand_write("canneal:netlist", 0.08 * work)
        return {"initial_cost": cost}


class Dedup(_ParsecKernel):
    """Pipelined deduplication: chunking + hashing (integer streams)."""

    name = "dedup"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(13)
        data = rng.integers(0, 256, 500_000, dtype=np.uint8)
        chunks = np.split(data, range(4096, len(data), 4096))
        digests = {bytes(c[:8].tobytes()) for c in chunks}
        nbytes = len(data) * WORK_SCALE
        ctx.touch("dedup:hashtable", 8 * MB)
        ctx.int_ops(9.0 * nbytes)
        ctx.branch_ops(1.2 * nbytes)
        ctx.seq_read("dedup:input", nbytes, elem=64)
        ctx.skewed_read("dedup:hashtable", nbytes / 2048,
                        hot_fraction=0.01, hot_prob=0.6)
        return {"unique_chunks": len(digests)}


class Facesim(_ParsecKernel):
    """Finite-element face simulation: sparse FP solves."""

    name = "facesim"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(14)
        nodes = rng.random((30_000, 3))
        forces = np.roll(nodes, 1, axis=0) - nodes
        work = len(nodes) * WORK_SCALE * 20
        ctx.touch("facesim:mesh", 48 * MB)
        ctx.fp_ops(75.0 * work)
        ctx.int_ops(30.0 * work)
        ctx.branch_ops(5.0 * work)
        ctx.stride_read("facesim:mesh", 0.22 * work, stride=72, elem=24)
        return {"force_norm": float(np.abs(forces).sum())}


class Ferret(_ParsecKernel):
    """Content-based similarity search: feature FP + index probes."""

    name = "ferret"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(15)
        database = rng.random((5000, 48))
        queries = rng.random((64, 48))
        d = ((queries[:, None, :] - database[None, :, :]) ** 2).sum(axis=2)
        nearest = np.argmin(d, axis=1)
        work = d.size * WORK_SCALE
        ctx.touch("ferret:index", 48 * MB)
        ctx.fp_ops(3.0 * work)
        ctx.int_ops(2.2 * work)
        ctx.branch_ops(0.5 * work)
        ctx.skewed_read("ferret:index", work / 12, hot_fraction=0.1, hot_prob=0.9)
        return {"nearest_sum": int(nearest.sum())}


class Fluidanimate(_ParsecKernel):
    """SPH fluid: neighborhood FP interactions on a grid."""

    name = "fluidanimate"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(16)
        particles = rng.random((50_000, 3))
        cells = np.floor(particles * 16).astype(np.int64)
        density = np.bincount(
            cells[:, 0] * 256 + cells[:, 1] * 16 + cells[:, 2], minlength=4096
        )
        work = len(particles) * WORK_SCALE * 12
        ctx.touch("fluid:grid", 6 * MB)
        ctx.fp_ops(55.0 * work)
        ctx.int_ops(28.0 * work)
        ctx.branch_ops(6.0 * work)
        ctx.stride_read("fluid:grid", 0.6 * work, stride=192, elem=48)
        return {"occupied_cells": int((density > 0).sum())}


class Freqmine(_ParsecKernel):
    """FP-growth frequent itemset mining: tree walks, int heavy."""

    name = "freqmine"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(17)
        transactions = rng.integers(0, 200, size=(40_000, 8))
        counts = np.bincount(transactions.ravel(), minlength=200)
        frequent = int((counts > len(transactions) * 0.05).sum())
        work = transactions.size * WORK_SCALE * 4
        ctx.touch("freqmine:tree", 24 * MB)
        ctx.int_ops(30.0 * work)
        ctx.fp_ops(1.5 * work)
        ctx.branch_ops(9.0 * work)
        ctx.skewed_read("freqmine:tree", 0.8 * work, hot_fraction=0.15, hot_prob=0.85)
        return {"frequent_items": frequent}


class Raytrace(_ParsecKernel):
    """Ray-scene intersection: FP with BVH pointer chasing."""

    name = "raytrace"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(18)
        spheres = rng.random((2000, 4))
        rays = rng.random((20_000, 3))
        hits = int((rays[:, 0:1] < spheres[None, :200, 0]).sum())
        work = 20_000 * WORK_SCALE * 16
        ctx.touch("raytrace:bvh", 32 * MB)
        ctx.fp_ops(45.0 * work)
        ctx.int_ops(20.0 * work)
        ctx.branch_ops(10.0 * work)
        ctx.skewed_read("raytrace:bvh", 1.2 * work, hot_fraction=0.1, hot_prob=0.9)
        return {"hits": hits}


class Streamcluster(_ParsecKernel):
    """Online clustering: distance FP over streamed points."""

    name = "streamcluster"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(19)
        points = rng.random((30_000, 16))
        centers = points[:20]
        d = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assignment = np.argmin(d, axis=1)
        work = d.size * WORK_SCALE
        ctx.touch("sc:points", 8 * MB)
        ctx.fp_ops(3.0 * work)
        ctx.int_ops(1.4 * work)
        ctx.branch_ops(0.25 * work)
        ctx.seq_read("sc:points", work * 1.2, elem=8)
        return {"center_counts": int(np.bincount(assignment).max())}


class Swaptions(_ParsecKernel):
    """Monte-Carlo swaption pricing: long FP simulation loops."""

    name = "swaptions"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(20)
        paths = rng.normal(0, 1, (8000, 32)).cumsum(axis=1)
        payoff = np.maximum(paths[:, -1], 0).mean()
        work = paths.size * WORK_SCALE * 4
        ctx.touch("swaptions:paths", 8 * MB)
        ctx.fp_ops(28.0 * work)
        ctx.int_ops(7.0 * work)
        ctx.branch_ops(1.5 * work)
        ctx.seq_read("swaptions:paths", work, elem=8)
        return {"payoff": float(payoff)}


class X264(_ParsecKernel):
    """Video encoding: SAD block matching, integer SIMD style."""

    name = "x264"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(21)
        frame = rng.integers(0, 256, (288, 352), dtype=np.int32)
        ref = np.roll(frame, 2, axis=1)
        sad = int(np.abs(frame - ref).sum())
        work = frame.size * WORK_SCALE * 40
        ctx.touch("x264:frames", 64 * MB)
        ctx.int_ops(18.0 * work)
        ctx.fp_ops(0.8 * work)
        ctx.branch_ops(3.0 * work)
        ctx.seq_read("x264:frames", 0.1 * work, elem=64)
        ctx.stride_read("x264:frames", 0.09 * work, stride=352, elem=16)
        return {"sad": sad}


def _phi(x):
    """Standard normal CDF via erf-free approximation (vectorized)."""
    import numpy as np

    t = 1.0 / (1.0 + 0.2316419 * np.abs(x))
    poly = t * (0.319381530 + t * (-0.356563782 + t * (1.781477937
               + t * (-1.821255978 + t * 1.330274429))))
    cdf = 1.0 - np.exp(-x * x / 2.0) / np.sqrt(2 * np.pi) * poly
    return np.where(x >= 0, cdf, 1.0 - cdf)


PARSEC_KERNELS = (
    Blackscholes, Bodytrack, Canneal, Dedup, Facesim, Ferret,
    Fluidanimate, Freqmine, Raytrace, Streamcluster, Swaptions, X264,
)


def parsec_suite() -> list:
    """All twelve PARSEC benchmarks, as run in the paper."""
    return [cls() for cls in PARSEC_KERNELS]
