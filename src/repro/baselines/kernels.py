"""Baseline-kernel framework for the traditional benchmark suites.

The paper compares BigDataBench against HPCC 1.4 (all seven benchmarks),
PARSEC 3.0 (all twelve, native inputs), and SPEC CPU2006 (grouped into
SPECINT and SPECFP) -- Section 6.1.3.  Each kernel here is a small
*functional* numpy computation instrumented with the same
:class:`~repro.uarch.perfctx.PerfContext` API as the big data engines, so
Figures 4-6 compare both worlds under one measurement model.

Kernels return a checkable functional result; profiles are collected by
:func:`run_kernel` / :func:`run_suite`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.codemodel import CodeProfile
from repro.uarch.events import PerfEvents, ProfileReport
from repro.uarch.hierarchy import MachineConfig, XEON_E5645
from repro.uarch.perfctx import PerfContext

MB = 1024 * 1024


class BaselineKernel:
    """One traditional-benchmark program."""

    name = "kernel"
    suite = "HPCC"
    code_profile: CodeProfile = None

    def execute(self, ctx) -> dict:
        """Run the kernel under ``ctx``; return functional results."""
        raise NotImplementedError


def run_kernel(kernel: BaselineKernel, machine: MachineConfig = XEON_E5645,
               seed: int = 0) -> "tuple[ProfileReport, dict]":
    """Profile one kernel on one machine configuration."""
    ctx = PerfContext(machine, seed=seed)
    with ctx.code(kernel.code_profile):
        result = kernel.execute(ctx)
    report = ctx.finalize(metadata={"kernel": kernel.name, "suite": kernel.suite})
    return report, result


def run_suite(kernels: list, machine: MachineConfig = XEON_E5645,
              seed: int = 0) -> list:
    """Profile a whole suite; returns one report per kernel."""
    return [run_kernel(k, machine, seed)[0] for k in kernels]


def suite_average(reports: list) -> PerfEvents:
    """Merged (summed) events across a suite: the paper's Avg_* bars."""
    merged = PerfEvents()
    for report in reports:
        merged = merged.merge(report.events)
    return merged


@dataclass(frozen=True)
class SuiteSummary:
    """Averaged metrics of one traditional suite on one machine."""

    suite: str
    events: PerfEvents

    @property
    def l1i_mpki(self) -> float:
        return self.events.l1i_mpki
