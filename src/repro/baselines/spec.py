"""SPEC CPU2006-like kernel groups: SPECINT and SPECFP.

The paper runs the official applications with the first reference input
and reports group averages (Section 6.1.3).  SPECINT is the
integer-operation extreme (int/fp ratio ~409); SPECFP carries high FP
intensity with moderate cache pressure (L2 MPKI ~14, L3 ~1.4).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.kernels import BaselineKernel, MB
from repro.uarch.codemodel import SPEC_CODE

WORK_SCALE = 64


class _SpecIntKernel(BaselineKernel):
    suite = "SPECINT"
    code_profile = SPEC_CODE


class _SpecFpKernel(BaselineKernel):
    suite = "SPECFP"
    code_profile = SPEC_CODE


# ---------------------------------------------------------------------------
# SPECINT-like
# ---------------------------------------------------------------------------

class CompressKernel(_SpecIntKernel):
    """bzip2-like: byte-stream transforms and frequency modeling."""

    name = "401.compress"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(30)
        data = rng.integers(0, 256, 400_000, dtype=np.uint8)
        freq = np.bincount(data, minlength=256)
        entropy = float(-np.sum(
            (freq / len(data)) * np.log2(np.maximum(freq, 1) / len(data))
        ))
        nbytes = len(data) * WORK_SCALE
        ctx.touch("compress:window", 6 * MB)
        ctx.int_ops(24.0 * nbytes)
        ctx.branch_ops(7.0 * nbytes)
        ctx.fp_ops(0.02 * nbytes)
        ctx.seq_read("compress:window", nbytes, elem=64)
        ctx.skewed_read("compress:window", 1.2 * nbytes,
                        hot_fraction=0.08, hot_prob=0.85)
        return {"entropy_bits": entropy}


class GraphSearchKernel(_SpecIntKernel):
    """astar/mcf-like: pointer-heavy search over a large arena."""

    name = "473.graphsearch"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(31)
        nodes = 50_000
        successors = rng.integers(0, nodes, size=(nodes, 4))
        frontier = {0}
        for _ in range(3):
            frontier = {int(s) for f in list(frontier)[:500]
                        for s in successors[f]}
        work = nodes * WORK_SCALE * 20
        ctx.touch("search:arena", 48 * MB)
        ctx.int_ops(18.0 * work)
        ctx.branch_ops(6.0 * work)
        ctx.fp_ops(0.03 * work)
        ctx.skewed_read("search:arena", 0.55 * work, hot_fraction=0.04, hot_prob=0.88)
        return {"frontier": len(frontier)}


class InterpreterKernel(_SpecIntKernel):
    """perlbench/gcc-like: dispatch loops and symbol tables."""

    name = "400.interpreter"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(32)
        ops = rng.integers(0, 16, 300_000)
        acc = 0
        for op, chunk in zip(*np.unique(ops, return_counts=True)):
            acc += int(op) * int(chunk)
        work = len(ops) * WORK_SCALE * 6
        ctx.touch("interp:tables", 20 * MB)
        ctx.int_ops(30.0 * work)
        ctx.branch_ops(11.0 * work)
        ctx.fp_ops(0.05 * work)
        ctx.skewed_read("interp:tables", 1.0 * work, hot_fraction=0.06, hot_prob=0.92)
        ctx.seq_read("interp:bytecode", work, elem=16)
        return {"acc": acc}


# ---------------------------------------------------------------------------
# SPECFP-like
# ---------------------------------------------------------------------------

class StencilKernel(_SpecFpKernel):
    """leslie3d/zeusmp-like: 3-D stencil sweeps."""

    name = "437.stencil"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(33)
        grid = rng.random((64, 64, 64))
        smoothed = (grid + np.roll(grid, 1, 0) + np.roll(grid, 1, 1)
                    + np.roll(grid, 1, 2)) / 4.0
        work = grid.size * WORK_SCALE * 10
        ctx.touch("stencil:grid", 8 * MB)
        ctx.fp_ops(8.0 * work)
        ctx.int_ops(3.0 * work)
        ctx.branch_ops(0.4 * work)
        ctx.seq_read("stencil:grid", 0.9 * work, elem=8)
        ctx.stride_read("stencil:grid", 0.3 * work, stride=64 * 8, elem=8)
        ctx.seq_write("stencil:grid", 0.3 * work, elem=8)
        return {"mean": float(smoothed.mean())}


class MolecularKernel(_SpecFpKernel):
    """namd/gromacs-like: pairwise force FP with neighbor lists."""

    name = "444.molecular"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(34)
        atoms = rng.random((8000, 3))
        pairs = rng.integers(0, len(atoms), size=(60_000, 2))
        delta = atoms[pairs[:, 0]] - atoms[pairs[:, 1]]
        energy = float((1.0 / np.maximum((delta ** 2).sum(axis=1), 1e-6)).sum())
        work = len(pairs) * WORK_SCALE * 8
        ctx.touch("md:atoms", 6 * MB)
        ctx.fp_ops(30.0 * work)
        ctx.int_ops(8.0 * work)
        ctx.branch_ops(1.2 * work)
        ctx.skewed_read("md:atoms", 1.4 * work, hot_fraction=0.05, hot_prob=0.9)
        return {"energy": energy}


class LinearSolverKernel(_SpecFpKernel):
    """soplex/calculix-like: sparse matrix-vector iterations."""

    name = "450.solver"

    def execute(self, ctx) -> dict:
        rng = np.random.default_rng(35)
        n = 40_000
        diag = rng.random(n) + 1.0
        x = np.ones(n)
        for _ in range(4):
            x = (1.0 + 0.5 * np.roll(x, 1)) / diag
        work = n * WORK_SCALE * 30
        ctx.touch("solver:matrix", 10 * MB)
        ctx.fp_ops(10.0 * work)
        ctx.int_ops(4.0 * work)
        ctx.branch_ops(0.8 * work)
        ctx.seq_read("solver:matrix", 1.2 * work, elem=8)
        ctx.rand_read("solver:matrix", 0.05 * work)
        return {"norm": float(np.abs(x).sum())}


SPECINT_KERNELS = (CompressKernel, GraphSearchKernel, InterpreterKernel)
SPECFP_KERNELS = (StencilKernel, MolecularKernel, LinearSolverKernel)


def specint_suite() -> list:
    return [cls() for cls in SPECINT_KERNELS]


def specfp_suite() -> list:
    return [cls() for cls in SPECFP_KERNELS]
