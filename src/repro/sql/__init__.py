"""Hive/Impala-like SQL engine for the relational-query workloads."""

from repro.sql.engine import QueryResult, QueryStats, SqlEngine
from repro.sql.hive_exec import HiveExecutor
from repro.sql.shark_exec import SharkExecutor
from repro.sql.operators import Aggregate, Predicate
from repro.sql.parser import Query, SqlError, parse

__all__ = [
    "Aggregate",
    "HiveExecutor",
    "Predicate",
    "Query",
    "QueryResult",
    "QueryStats",
    "SharkExecutor",
    "SqlEngine",
    "SqlError",
    "parse",
]
