"""Shark-style execution: compile SQL plans into Spark RDD lineages.

The third execution family of Table 4's query stacks: Shark ran Hive's
query shapes on Spark, trading Hadoop's per-job costs for in-memory
RDDs and low per-action overheads.  Plans here compile to the engine in
:mod:`repro.spark`:

* SELECT/WHERE    -> ``filter_mask`` over row partitions;
* GROUP BY + aggs -> pair RDD + ``reduce_by_key`` (with Spark's map-side
  combining); AVG runs as SUM and COUNT folds combined at the driver;
* JOIN + GROUP BY -> tagged-pair shuffle (as the Hive plan) expressed as
  one ``reduce_by_key`` stage plus a driver-side pairing, then the
  aggregation stage.

Cached table RDDs make repeated queries cheap -- the Shark selling
point; results match the other two executors exactly (tests assert it).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.ledger import CostLedger
from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.datagen.table import Table
from repro.mapreduce.job import OpCost
from repro.spark import SparkContext
from repro.sql.engine import PAPER_TABLE_RATIO, QueryResult, QueryStats
from repro.sql.parser import Query, SqlError, parse
from repro.sql.operators import Predicate


def _sum_reducer(values, starts):
    return np.add.reduceat(values, starts)


def _min_reducer(values, starts):
    return np.minimum.reduceat(values, starts)


def _max_reducer(values, starts):
    return np.maximum.reduceat(values, starts)


_REDUCERS = {"sum": _sum_reducer, "min": _min_reducer, "max": _max_reducer}


class SharkExecutor:
    """Runs the supported query shapes as Spark stages."""

    def __init__(self, ctx=None, cluster: ClusterSpec = PAPER_CLUSTER):
        self.cluster = cluster
        self._ctx = ctx
        self.sc = SparkContext(cluster=cluster, ctx=ctx)
        self._tables: dict = {}
        self._row_rdds: dict = {}

    @property
    def ctx(self):
        return self.sc.ctx

    @ctx.setter
    def ctx(self, value) -> None:
        self.sc = SparkContext(cluster=self.cluster, ctx=value)
        self._row_rdds.clear()

    def register(self, name: str, table: Table, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._tables[name] = (table, nbytes)
        self._row_rdds.pop(name, None)

    def execute(self, sql: str) -> QueryResult:
        return self.run_plan(parse(sql))

    def run_plan(self, query: Query) -> QueryResult:
        stats = QueryStats()
        cost_start = len(self.sc.cost.phases)
        if query.join is not None:
            result = self._join_aggregate(query, stats)
        elif query.is_aggregate:
            result = self._aggregate(query, stats)
        else:
            result = self._select(query, stats)
        stats.rows_out = result.num_rows
        # The driver's ledger charged every action; slice off the phases
        # belonging to this query.
        ledger = CostLedger(self.cluster, ctx=self.ctx)
        ledger.absorb(self.sc.cost.phases[cost_start:])
        return QueryResult(table=result, stats=stats, cost=ledger.job)

    # -- internals ---------------------------------------------------------------

    def _lookup(self, name: str):
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"table {name!r} is not registered") from None

    def _rows_rdd(self, name: str):
        """A cached RDD of row indices for one registered table."""
        if name not in self._row_rdds:
            table, nbytes = self._lookup(name)
            from repro.mapreduce.hdfs import Dfs

            file = Dfs().put(f"shark:{name}",
                             np.arange(table.num_rows, dtype=np.int64), nbytes)
            self.sc.ctx.touch(f"dfs:shark:{name}", nbytes * PAPER_TABLE_RATIO)
            self._row_rdds[name] = self.sc.from_dfs(file).cache()
        return self._row_rdds[name]

    def _mask(self, table: Table, predicates: list) -> np.ndarray:
        mask = np.ones(table.num_rows, dtype=bool)
        for predicate in predicates:
            mask &= Predicate(predicate.column, predicate.op,
                              predicate.literal).mask(table)
        return mask

    def _scan_stats(self, stats: QueryStats, name: str) -> None:
        table, nbytes = self._lookup(name)
        stats.rows_scanned += table.num_rows
        stats.input_bytes += nbytes
        stats.tables.append(name)

    def _select(self, query: Query, stats: QueryStats) -> Table:
        name = query.table.name
        table, _ = self._lookup(name)
        self._scan_stats(stats, name)
        mask = self._mask(table, query.where)
        filtered = self._rows_rdd(name).filter_mask(
            lambda rows, ctx: mask[rows],
            cost=OpCost(int_ops=560, branch_ops=180, fp_ops=8),
        )
        rows = np.sort(np.concatenate(filtered.collect()))
        stats.rows_filtered = len(rows)
        columns = [c.split(".", 1)[-1] for c in query.select_columns] \
            or table.column_names
        return Table("result", {c: table.column(c)[rows] for c in columns})

    def _aggregate(self, query: Query, stats: QueryStats) -> Table:
        name = query.table.name
        table, _ = self._lookup(name)
        self._scan_stats(stats, name)
        if len(query.group_by) > 1:
            raise SqlError("Shark execution supports one GROUP BY column")
        mask = self._mask(table, query.where)
        group_col = query.group_by[0].split(".", 1)[-1] if query.group_by else None
        group_keys = (
            table.column(group_col).astype(np.int64) if group_col
            else np.zeros(table.num_rows, dtype=np.int64)
        )

        out: dict = {}
        group_values = None
        for aggregate in query.aggregates:
            column = aggregate.column.split(".", 1)[-1]
            values = (
                np.ones(table.num_rows) if aggregate.column == "*"
                else table.column(column).astype(np.float64)
            )
            keys, folded = self._fold(name, group_keys, values, mask,
                                      aggregate.func)
            if group_values is None:
                group_values = keys
            out[aggregate.alias] = folded
        columns: dict = {}
        if group_col:
            columns[group_col] = group_values
        columns.update(out)
        return Table("result", columns)

    def _fold(self, name, group_keys, values, mask, func):
        """One reduce_by_key stage; AVG folds SUM and COUNT together."""
        if func == "avg":
            keys, sums = self._fold(name, group_keys, values, mask, "sum")
            _, counts = self._fold(name, group_keys, values, mask, "count")
            return keys, sums / counts
        folded_values = np.ones_like(values) if func == "count" else values
        reducer = _REDUCERS["sum" if func == "count" else func]

        def to_pairs(rows, ctx):
            keep = rows[mask[rows]]
            return group_keys[keep], folded_values[keep]

        pairs = self._rows_rdd(name).map_partitions(
            to_pairs, cost=OpCost(int_ops=620, branch_ops=200, fp_ops=10,
                                  rand_writes=1),
        ).reduce_by_key(reducer)
        keys_list, values_list = [], []
        for part_keys, part_values in pairs.collect():
            keys_list.append(part_keys)
            values_list.append(part_values)
        keys = np.concatenate(keys_list)
        folded = np.concatenate(values_list)
        order = np.argsort(keys, kind="stable")
        return keys[order], folded[order]

    def _join_aggregate(self, query: Query, stats: QueryStats) -> Table:
        if not query.is_aggregate or len(query.group_by) != 1 \
                or len(query.aggregates) != 1 \
                or query.aggregates[0].func != "sum":
            raise SqlError("Shark join plan supports join + single SUM + "
                           "single GROUP BY")
        left_name = query.table.name
        right_name = query.join.table.name
        left_table, _ = self._lookup(left_name)
        right_table, _ = self._lookup(right_name)
        self._scan_stats(stats, left_name)
        self._scan_stats(stats, right_name)

        def side_of(qualified: str):
            alias, column = qualified.split(".", 1)
            if alias in (query.table.alias, query.table.name):
                return left_name, left_table, column
            return right_name, right_table, column

        _, lk_table, lk_col = side_of(query.join.left_column)
        _, rk_table, rk_col = side_of(query.join.right_column)
        group_name, group_table, group_col = side_of(query.group_by[0])
        value_name, value_table, value_col = side_of(query.aggregates[0].column)
        if group_table is value_table:
            raise SqlError("group and value columns must come from "
                           "opposite join sides")

        dim_table = group_table
        fact_table = value_table
        dim_key = (lk_col if lk_table is dim_table else rk_col)
        fact_key = (rk_col if lk_table is dim_table else lk_col)

        # Stage 1: tag and shuffle both sides by the join key.
        dim_name = group_name
        fact_name = value_name
        dim_pairs = self._rows_rdd(dim_name).map_partitions(
            lambda rows, ctx: (
                dim_table.column(dim_key).astype(np.int64)[rows] * 2,
                dim_table.column(group_col).astype(np.float64)[rows],
            ),
            cost=OpCost(int_ops=700, branch_ops=220, fp_ops=10, rand_writes=1),
        )
        fact_pairs = self._rows_rdd(fact_name).map_partitions(
            lambda rows, ctx: (
                fact_table.column(fact_key).astype(np.int64)[rows] * 2 + 1,
                fact_table.column(value_col).astype(np.float64)[rows],
            ),
            cost=OpCost(int_ops=700, branch_ops=220, fp_ops=10, rand_writes=1),
        )
        # Driver-side pairing of the shuffled groups (the join reduce).
        joined_keys, joined_values = self._pair_tagged(dim_pairs, fact_pairs)
        stats.rows_joined = len(joined_keys)

        # Stage 2: aggregate the (group value, fact value) pairs.
        pairs = self.sc.pair_source(
            joined_keys, joined_values,
            nbytes=len(joined_keys) * 16, name="shark:joined",
            from_memory=True,
        ).reduce_by_key(_sum_reducer)
        keys_list, values_list = [], []
        for part_keys, part_values in pairs.collect():
            keys_list.append(part_keys)
            values_list.append(part_values)
        keys = np.concatenate(keys_list)
        sums = np.concatenate(values_list)
        order = np.argsort(keys, kind="stable")
        column_name = query.group_by[0].replace(".", "_", 1)
        return Table("result", {
            column_name: keys[order],
            query.aggregates[0].alias: sums[order],
        })

    def _pair_tagged(self, dim_pairs, fact_pairs):
        """Group tagged pairs by join key and emit the cross products."""
        dim_map: dict = {}
        for keys, values in dim_pairs.collect():
            for key, value in zip((keys // 2).tolist(), values.tolist()):
                dim_map.setdefault(key, []).append(value)
        out_keys, out_values = [], []
        for keys, values in fact_pairs.collect():
            join_keys = (keys // 2).astype(np.int64)
            for key, value in zip(join_keys.tolist(), values.tolist()):
                for group_value in dim_map.get(key, ()):
                    out_keys.append(int(group_value))
                    out_values.append(value)
        self.sc.ctx.int_ops(40 * (len(out_keys) + len(dim_map)))
        return (np.asarray(out_keys, dtype=np.int64),
                np.asarray(out_values, dtype=np.float64))
