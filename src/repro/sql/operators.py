"""Physical query operators: scan, filter, project, aggregate, join.

Operators are vectorized over whole column batches (the columnar
execution style of Impala/Shark, the paper's realtime-analytics stacks)
and charge the profiler for their row-by-row work: predicate branches,
hash-table builds and probes, aggregation updates.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from repro.datagen.table import Table

_COMPARATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Predicate:
    """``column <op> literal`` filter condition."""

    column: str
    op: str
    literal: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unsupported comparator {self.op!r}")

    def mask(self, table: Table) -> np.ndarray:
        return _COMPARATORS[self.op](table.column(self.column), self.literal)


def scan(table: Table, columns: list, nbytes: int, ctx, region: str) -> Table:
    """Columnar scan: read only the touched columns."""
    missing = [c for c in columns if c not in table.columns]
    if missing:
        raise KeyError(f"unknown column(s) {missing} in table {table.name!r}")
    touched_fraction = len(columns) / max(1, len(table.columns))
    ctx.seq_read(region, nbytes * touched_fraction, elem=8)
    # Hive-style per-row executor overhead: object inspectors, SerDe,
    # plus one row-object allocation swept through the young generation.
    ctx.int_ops(420 * table.num_rows * len(columns))
    ctx.branch_ops(140 * table.num_rows)
    ctx.fp_ops(7 * table.num_rows)
    ctx.touch("sql:young", 4 * 1024 * 1024)
    ctx.seq_write("sql:young", 420 * table.num_rows, elem=16)
    return Table(table.name, {c: table.column(c) for c in columns})


def filter_rows(table: Table, predicates: list, ctx) -> Table:
    """Apply conjunctive predicates."""
    if not predicates:
        return table
    mask = np.ones(table.num_rows, dtype=bool)
    for predicate in predicates:
        mask &= predicate.mask(table)
        ctx.int_ops(340 * table.num_rows)
        ctx.branch_ops(110 * table.num_rows)
        ctx.fp_ops(3 * table.num_rows)
    return Table(table.name, {n: c[mask] for n, c in table.columns.items()})


def project(table: Table, columns: list, ctx) -> Table:
    ctx.int_ops(len(columns) * table.num_rows * 30)
    return Table(table.name, {c: table.column(c) for c in columns})


@dataclass(frozen=True)
class Aggregate:
    """One aggregate expression: ``func(column) AS alias``."""

    func: str       # count / sum / avg / min / max
    column: str     # "*" for count(*)
    alias: str

    _IMPLS = {
        "sum": np.add.reduceat,
        "min": np.minimum.reduceat,
        "max": np.maximum.reduceat,
    }

    def apply(self, values: np.ndarray, starts: np.ndarray, counts: np.ndarray):
        if self.func == "count":
            return counts.astype(np.int64)
        if self.func == "avg":
            return np.add.reduceat(values, starts) / counts
        try:
            return self._IMPLS[self.func](values, starts)
        except KeyError:
            raise ValueError(f"unsupported aggregate {self.func!r}") from None


def hash_aggregate(table: Table, group_by: list, aggregates: list, ctx,
                   region: str) -> Table:
    """Group-by via sort-based grouping with hash-table cost accounting."""
    rows = table.num_rows
    ctx.touch(region, max(1 << 16, rows * 16))
    # Group keys are Zipf-skewed (popular goods, frequent buyers), so the
    # hash-table upserts concentrate on hot buckets.
    ctx.skewed_write(region, rows, hot_fraction=0.08, hot_prob=0.85)
    ctx.int_ops(420 * rows * max(1, len(group_by) + len(aggregates)))
    ctx.branch_ops(130 * rows)
    ctx.fp_ops(8 * rows * max(1, len(aggregates)))

    if not group_by:
        out = {}
        if rows == 0:
            # SQL over an empty relation: COUNT is 0; SUM folds to 0;
            # MIN/MAX have no witness (NaN stands in for NULL).
            for agg in aggregates:
                if agg.func == "count":
                    out[agg.alias] = np.array([0], dtype=np.int64)
                elif agg.func == "sum":
                    out[agg.alias] = np.array([0.0])
                else:
                    out[agg.alias] = np.array([np.nan])
            return Table("result", out)
        counts = np.array([rows], dtype=np.int64)
        starts = np.array([0], dtype=np.int64)
        for agg in aggregates:
            values = table.column(agg.column) if agg.column != "*" else np.zeros(rows)
            out[agg.alias] = agg.apply(values, starts, counts)
        return Table("result", out)

    key_cols = [table.column(c) for c in group_by]
    order = np.lexsort(key_cols[::-1])
    sorted_keys = [c[order] for c in key_cols]
    change = np.zeros(rows, dtype=bool)
    if rows:
        change[0] = True
        for col in sorted_keys:
            change[1:] |= col[1:] != col[:-1]
    starts = np.nonzero(change)[0]
    counts = np.diff(np.append(starts, rows))
    out = {}
    for name, col in zip(group_by, sorted_keys):
        out[name] = col[starts]
    for agg in aggregates:
        values = (
            table.column(agg.column)[order] if agg.column != "*"
            else np.zeros(rows)
        )
        out[agg.alias] = agg.apply(values, starts, counts)
    return Table("result", out)


def hash_join(left: Table, right: Table, left_key: str, right_key: str, ctx,
              region: str) -> Table:
    """Inner equi-join: build on the smaller side, probe with the larger."""
    build, probe = (left, right) if left.num_rows <= right.num_rows else (right, left)
    build_key = left_key if build is left else right_key
    probe_key = right_key if build is left else left_key

    ctx.touch(region, max(1 << 16, build.num_rows * 24))
    ctx.rand_write(region, build.num_rows)     # build side inserts
    # Probe keys follow the fact table's skew: hot build rows stay cached.
    ctx.skewed_read(region, probe.num_rows, hot_fraction=0.1, hot_prob=0.8)
    ctx.int_ops(520 * (build.num_rows + probe.num_rows))
    ctx.branch_ops(160 * probe.num_rows)
    ctx.fp_ops(3 * probe.num_rows)

    build_keys = build.column(build_key)
    probe_keys = probe.column(probe_key)
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    left_idx = np.searchsorted(sorted_build, probe_keys, side="left")
    right_idx = np.searchsorted(sorted_build, probe_keys, side="right")
    match_counts = right_idx - left_idx
    probe_rows = np.repeat(np.arange(probe.num_rows), match_counts)
    build_positions = _expand_ranges(left_idx, right_idx)
    build_rows = order[build_positions]

    columns = {}
    for name, col in build.columns.items():
        columns[f"{build.name}.{name}"] = col[build_rows]
    for name, col in probe.columns.items():
        columns[f"{probe.name}.{name}"] = col[probe_rows]
    return Table("join", columns)


def _expand_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate arange(start, stop) for each pair, vectorized."""
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(counts[:-1], out=out_starts[1:])
    indices = np.arange(total, dtype=np.int64)
    offsets = indices - np.repeat(out_starts, counts)
    return np.repeat(starts, counts) + offsets
