"""A tiny SQL front end covering the suite's relational-query workloads.

Supports exactly the query shapes the paper's Select / Aggregate / Join
workloads need (Table 4):

    SELECT a, b FROM t WHERE a > 10 AND b <= 3
    SELECT g, SUM(x), COUNT(*) FROM t GROUP BY g
    SELECT o.C, SUM(i.X) FROM orders o JOIN items i ON o.K = i.K
        WHERE i.X > 5 GROUP BY o.C

Parsing produces a :class:`Query` logical plan consumed by
:class:`repro.sql.engine.SqlEngine`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.sql.operators import Aggregate, Predicate

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>-?\d+(?:\.\d+)?)"
    r"|(?P<id>[A-Za-z_][\w.]*|\*)"
    r"|(?P<sym><=|>=|!=|=|<|>|\(|\)|,))"
)

_AGG_FUNCS = {"count", "sum", "avg", "min", "max"}
_KEYWORDS = {"select", "from", "where", "group", "by", "join", "on", "and", "as"}


def tokenize(sql: str) -> list:
    tokens = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip():
                raise SqlError(f"cannot tokenize near {sql[pos:pos + 20]!r}")
            break
        tokens.append(match.group(match.lastgroup))
        pos = match.end()
    return tokens


class SqlError(ValueError):
    """Raised for malformed or unsupported SQL."""


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    left_column: str    # qualified, e.g. "o.ORDER_ID"
    right_column: str


@dataclass
class Query:
    """Logical plan of one supported query."""

    select_columns: list = field(default_factory=list)   # plain column refs
    aggregates: list = field(default_factory=list)       # Aggregate items
    table: TableRef = None
    join: JoinClause = None
    where: list = field(default_factory=list)            # Predicate items
    group_by: list = field(default_factory=list)

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)


class _Parser:
    def __init__(self, tokens: list):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        if not token:
            raise SqlError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword:
            raise SqlError(f"expected {keyword.upper()!r}, got {token!r}")

    def accept(self, keyword: str) -> bool:
        if self.peek().lower() == keyword:
            self.pos += 1
            return True
        return False

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Query:
        query = Query()
        self.expect("select")
        self._select_list(query)
        self.expect("from")
        query.table = self._table_ref()
        if self.accept("join"):
            table = self._table_ref()
            self.expect("on")
            left = self.next()
            self.expect("=")
            right = self.next()
            query.join = JoinClause(table=table, left_column=left, right_column=right)
        if self.accept("where"):
            query.where.append(self._predicate())
            while self.accept("and"):
                query.where.append(self._predicate())
        if self.accept("group"):
            self.expect("by")
            query.group_by.append(self.next())
            while self.accept(","):
                query.group_by.append(self.next())
        if self.peek():
            raise SqlError(f"trailing tokens starting at {self.peek()!r}")
        if query.aggregates and query.select_columns and not query.group_by:
            raise SqlError("mixing columns and aggregates requires GROUP BY")
        return query

    def _select_list(self, query: Query) -> None:
        while True:
            item = self.next()
            lowered = item.lower()
            if lowered in _AGG_FUNCS and self.peek() == "(":
                self.next()  # (
                column = self.next()
                self.expect(")")
                if lowered != "count" and column == "*":
                    raise SqlError(f"{item}(*) is only valid for COUNT")
                alias = f"{lowered}({column})"
                if self.accept("as"):
                    alias = self.next()
                query.aggregates.append(Aggregate(lowered, column, alias))
            elif lowered in _KEYWORDS:
                raise SqlError(f"unexpected keyword {item!r} in select list")
            else:
                query.select_columns.append(item)
            if not self.accept(","):
                break

    def _table_ref(self) -> TableRef:
        name = self.next()
        alias = name
        if self.peek() and self.peek().lower() not in _KEYWORDS | {"", ","} \
                and self.peek() not in ("(", ")"):
            alias = self.next()
        return TableRef(name=name, alias=alias)

    def _predicate(self) -> Predicate:
        column = self.next()
        op = self.next()
        literal = self.next()
        try:
            value = float(literal)
        except ValueError:
            raise SqlError(f"expected numeric literal, got {literal!r}") from None
        return Predicate(column=column, op=op, literal=value)


def parse(sql: str) -> Query:
    """Parse one query string into a :class:`Query` plan."""
    return _Parser(tokenize(sql)).parse()
