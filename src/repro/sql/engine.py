"""The SQL engine: a Hive/Impala-like executor over columnar tables.

Registered tables carry their *real* serialized byte size so scans charge
proportionate IO.  Execution is scan -> join -> filter -> aggregate/
project, all under the database code profile.  Per-query statistics feed
the realtime-analytics metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.ledger import CostLedger
from repro.cluster.timemodel import JobCost
from repro.datagen.table import Table
from repro.sql import operators
from repro.sql.parser import Query, SqlError, parse
from repro.uarch.codemodel import DATABASE_STACK
from repro.uarch.perfctx import context_or_null


@dataclass
class QueryStats:
    """Execution statistics of one query."""

    rows_scanned: int = 0
    rows_joined: int = 0
    rows_filtered: int = 0
    rows_out: int = 0
    input_bytes: float = 0.0
    tables: list = field(default_factory=list)
    #: Scan fragments re-executed after an injected executor crash.
    fragments_retried: int = 0


@dataclass
class QueryResult:
    table: Table
    stats: QueryStats
    cost: JobCost

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


#: Our tables stand for 8192x more data (32 GB at paper scale).
PAPER_TABLE_RATIO = 8192


@dataclass
class _Registered:
    table: Table
    nbytes: int


class SqlEngine:
    """Executes parsed queries against registered columnar tables."""

    EFFECTIVE_CPI = 0.95

    #: Query planning/coordination overhead (paper-scale seconds).
    QUERY_FIXED_SECONDS = 1.5

    def __init__(self, ctx=None, cluster=None, faults=None):
        from repro.cluster.node import PAPER_CLUSTER
        from repro.faults.inject import resolve_faults

        self.ctx = context_or_null(ctx)
        self.cluster = cluster or PAPER_CLUSTER
        self._tables: dict = {}
        self.faults = resolve_faults(self.ctx, faults)

    def register(self, name: str, table: Table, nbytes: int) -> None:
        """Register ``table`` under ``name`` with its real serialized size."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._tables[name] = _Registered(table=table, nbytes=nbytes)

    def execute(self, sql: str) -> QueryResult:
        """Parse and run one query."""
        return self.run_plan(parse(sql))

    def run_plan(self, query: Query) -> QueryResult:
        from repro.obs.metrics import METRICS

        ctx = self.ctx
        stats = QueryStats()
        ledger = CostLedger(self.cluster, ctx=ctx, cpi=self.EFFECTIVE_CPI)
        with ledger.measured(
                "query", fixed_seconds=self.QUERY_FIXED_SECONDS) as pending:
            with ctx.span("sql:query", category="sql") as sp:
                with ctx.code(DATABASE_STACK):
                    result = self._execute(query, stats)
                sp.set("rows_scanned", stats.rows_scanned)
                sp.set("rows_out", result.num_rows)
            pending.disk_read_bytes = stats.input_bytes
            pending.working_bytes = stats.input_bytes
        METRICS.counter("sql.queries").inc()
        METRICS.counter("sql.rows_scanned").inc(stats.rows_scanned)
        METRICS.counter("sql.input_bytes").inc(stats.input_bytes)
        stats.rows_out = result.num_rows
        return QueryResult(table=result, stats=stats, cost=ledger.job)

    # -- internals ---------------------------------------------------------------

    def _execute(self, query: Query, stats: QueryStats) -> Table:
        ctx = self.ctx
        base = self._scan_side(query, query.table, joined=query.join is not None,
                               stats=stats)
        if query.join is not None:
            other = self._scan_side(query, query.join.table, joined=True, stats=stats)
            left_key = self._resolve(query, query.join.left_column, joined=True)
            right_key = self._resolve(query, query.join.right_column, joined=True)
            # Keys are qualified "<table>.<col>"; split per side.
            base_key = left_key if left_key.split(".")[0] == base.name else right_key
            other_key = right_key if base_key is left_key else left_key
            with ctx.span("sql:join", category="sql") as sp:
                current = operators.hash_join(
                    base, other,
                    base_key.split(".", 1)[1], other_key.split(".", 1)[1],
                    self.ctx, region="sql:join",
                )
                sp.set("rows", current.num_rows)
            stats.rows_joined = current.num_rows
        else:
            current = base

        joined = query.join is not None
        predicates = [
            operators.Predicate(
                column=self._resolve(query, p.column, joined),
                op=p.op, literal=p.literal,
            )
            for p in query.where
        ]
        if predicates:
            with ctx.span("sql:filter", category="sql",
                          predicates=len(predicates)) as sp:
                current = operators.filter_rows(current, predicates, self.ctx)
                sp.set("rows", current.num_rows)
            stats.rows_filtered = current.num_rows

        if query.is_aggregate:
            aggregates = [
                operators.Aggregate(
                    func=a.func,
                    column=(a.column if a.column == "*"
                            else self._resolve(query, a.column, joined)),
                    alias=a.alias,
                )
                for a in query.aggregates
            ]
            group_by = [self._resolve(query, g, joined) for g in query.group_by]
            with ctx.span("sql:aggregate", category="sql",
                          groups=len(group_by)):
                return operators.hash_aggregate(
                    current, group_by, aggregates, self.ctx, region="sql:agg"
                )
        columns = [self._resolve(query, c, joined) for c in query.select_columns]
        if not columns:
            return current
        with ctx.span("sql:project", category="sql", columns=len(columns)):
            return operators.project(current, columns, self.ctx)

    def _scan_side(self, query: Query, ref, joined: bool, stats: QueryStats) -> Table:
        registered = self._lookup(ref.name)
        needed = self._columns_for(query, ref, registered.table, joined)
        self.ctx.touch(f"sql:table:{ref.name}",
                       registered.nbytes * PAPER_TABLE_RATIO)
        with self.ctx.span(f"sql:scan:{ref.name}", category="sql",
                           columns=len(needed)) as sp:
            scanned = operators.scan(
                registered.table, needed, registered.nbytes, self.ctx,
                region=f"sql:table:{ref.name}",
            )
            sp.set("rows", registered.table.num_rows)
        # Chaos: an executor running this scan fragment may crash; the
        # coordinator re-dispatches the fragment (the scan work and IO
        # are charged again) and the result is recomputed identically.
        faults = self.faults
        if faults.enabled:
            site = f"sql:scan:{ref.name}"
            if faults.fires("task_crash", site) is not None:
                if faults.recovery:
                    with self.ctx.span("recovery:fragment_retry",
                                       category="faults"):
                        scanned = operators.scan(
                            registered.table, needed, registered.nbytes,
                            self.ctx, region=f"sql:table:{ref.name}",
                        )
                    stats.fragments_retried += 1
                    faults.recovered("fragment_retry", site,
                                     rows=registered.table.num_rows)
                else:
                    # The in-process engine cannot actually destroy its
                    # tables; an unrecovered fragment crash fails the
                    # query in a real engine, recorded here as loss.
                    faults.lost("scan_fragment", site)
        stats.rows_scanned += registered.table.num_rows
        stats.input_bytes += registered.nbytes * (
            len(needed) / max(1, len(registered.table.columns))
        )
        stats.tables.append(ref.name)
        # Joined sides keep qualified names so both sides can coexist.
        return Table(ref.name, dict(scanned.columns))

    def _columns_for(self, query: Query, ref, table: Table, joined: bool) -> list:
        """Columns of ``ref``'s table the query touches."""
        wanted = set()

        def note(raw: str) -> None:
            if raw == "*":
                return
            if "." in raw:
                alias, column = raw.split(".", 1)
                if alias in (ref.alias, ref.name):
                    wanted.add(column)
            elif not joined:
                wanted.add(raw)  # validated against the schema below

        for column in query.select_columns:
            note(column)
        for aggregate in query.aggregates:
            note(aggregate.column)
        for predicate in query.where:
            note(predicate.column)
        for column in query.group_by:
            note(column)
        if query.join is not None:
            note(query.join.left_column)
            note(query.join.right_column)
        unknown = [c for c in wanted if c not in table.columns]
        if unknown:
            raise SqlError(f"unknown column(s) {unknown} in table {ref.name!r}")
        return sorted(wanted) if wanted else list(table.columns)

    def _resolve(self, query: Query, raw: str, joined: bool) -> str:
        """Map a (possibly alias-qualified) reference to an output column."""
        if not joined:
            return raw.split(".", 1)[1] if "." in raw else raw
        if "." in raw:
            alias, column = raw.split(".", 1)
            name = self._alias_to_name(query, alias)
            return f"{name}.{column}"
        raise SqlError(f"column {raw!r} must be qualified in a join query")

    def _alias_to_name(self, query: Query, alias: str) -> str:
        for ref in filter(None, [query.table, query.join.table if query.join else None]):
            if alias in (ref.alias, ref.name):
                return ref.name
        raise SqlError(f"unknown table alias {alias!r}")

    def _lookup(self, name: str) -> _Registered:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"table {name!r} is not registered") from None
