"""Hive-style execution: compile SQL plans into MapReduce jobs.

Table 4 lists four relational-query stacks; two execution families
matter architecturally: in-process columnar engines (Impala, Shark,
MySQL -- :mod:`repro.sql.engine`) and SQL-on-MapReduce (Hive), where the
query compiles into chained MapReduce jobs with all the framework
overhead that entails.  This module is the second family:

* SELECT/WHERE     -> one map-oriented job (filter in map, identity
  reduce with range partitioning to keep row order);
* GROUP BY + aggs  -> one job per aggregate expression (map emits
  (group key, value), reduce folds the group);
* JOIN + GROUP BY  -> a two-job plan: a repartition join keyed by the
  join column with tagged records, then the aggregation job.

Results are bit-identical to the columnar engine's (tests assert it);
only the execution costs differ -- which is the point.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.ledger import CostLedger
from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.datagen.table import Table
from repro.mapreduce import Dfs, MapReduceJob, MapReduceRuntime, OpCost
from repro.sql.engine import PAPER_TABLE_RATIO, QueryResult, QueryStats
from repro.sql.parser import Query, SqlError, parse
from repro.sql.operators import Predicate

#: Tag multiplier for the repartition join: key = join_key * 2 + side.
_JOIN_TAG = 2


class _FilterJob(MapReduceJob):
    """Map-side filtering; emits (row position, selected column value)."""

    name = "hive-filter"
    group_by_key = False
    partitioner = "range"
    map_cost = OpCost(int_ops=760, branch_ops=250, fp_ops=10)

    def __init__(self, values: np.ndarray, mask: np.ndarray):
        self.values = values
        self.mask = mask

    def record_count(self, split):
        return len(split.payload)

    def map_batch(self, split, ctx):
        rows = split.payload  # row indices
        keep = rows[self.mask[rows]]
        return keep.astype(np.int64), self.values[keep].astype(np.float64)


class _AggregateJob(MapReduceJob):
    """(group key, value) -> one folded value per group."""

    name = "hive-agg"
    use_combiner = True
    map_cost = OpCost(int_ops=820, branch_ops=260, fp_ops=14, rand_writes=1)
    reduce_cost = OpCost(int_ops=300, branch_ops=90, fp_ops=10)

    _FOLDS = {
        "sum": np.add.reduceat,
        "min": np.minimum.reduceat,
        "max": np.maximum.reduceat,
    }

    def __init__(self, keys: np.ndarray, values: np.ndarray, func: str):
        self.keys = keys
        self.func = func
        if func not in ("count", "avg", "sum", "min", "max"):
            raise SqlError(f"unsupported aggregate {func!r}")
        # COUNT folds as a sum of ones so it is combiner-associative;
        # AVG is not associative at all, so its combiner is disabled.
        self.input_values = np.ones_like(values) if func == "count" else values
        if func == "avg":
            self.use_combiner = False

    def record_count(self, split):
        return len(split.payload)

    def map_batch(self, split, ctx):
        rows = split.payload
        return self.keys[rows].astype(np.int64), \
            self.input_values[rows].astype(np.float64)

    def reduce_batch(self, keys, values, starts, ctx):
        if self.func == "avg":
            counts = np.diff(np.append(starts, len(values)))
            return keys, np.add.reduceat(values, starts) / counts
        fold = self._FOLDS["sum" if self.func == "count" else self.func]
        return keys, fold(values, starts)


class _RepartitionJoinJob(MapReduceJob):
    """Classic tagged repartition join.

    Map emits ``key*2 + side``; the reduce groups both sides of each join
    key together (adjacent tags) and emits the cross product as
    (dimension value, fact value) pairs for the downstream aggregation.
    """

    name = "hive-join"
    map_cost = OpCost(int_ops=900, branch_ops=300, fp_ops=12, rand_writes=1)
    reduce_cost = OpCost(int_ops=420, branch_ops=130, fp_ops=8, rand_reads=1)

    def __init__(self, left_keys, left_values, right_keys, right_values):
        self.left_keys = left_keys
        self.left_values = left_values
        self.right_keys = right_keys
        self.right_values = right_values
        self._split_at = len(left_keys)

    def record_count(self, split):
        return len(split.payload)

    def map_batch(self, split, ctx):
        rows = split.payload
        left_rows = rows[rows < self._split_at]
        right_rows = rows[rows >= self._split_at] - self._split_at
        keys = np.concatenate([
            self.left_keys[left_rows] * _JOIN_TAG,
            self.right_keys[right_rows] * _JOIN_TAG + 1,
        ])
        values = np.concatenate([
            self.left_values[left_rows], self.right_values[right_rows],
        ])
        return keys.astype(np.int64), values.astype(np.float64)

    def reduce_batch(self, keys, values, starts, ctx):
        """Pair up tag-0 and tag-1 groups of each join key."""
        stops = np.append(starts[1:], len(values))
        join_keys = keys // _JOIN_TAG
        sides = keys % _JOIN_TAG
        out_keys = []
        out_values = []
        index = 0
        while index < len(keys):
            if (index + 1 < len(keys)
                    and join_keys[index] == join_keys[index + 1]
                    and sides[index] == 0 and sides[index + 1] == 1):
                left = values[starts[index]:stops[index]]
                right = values[starts[index + 1]:stops[index + 1]]
                # Cross product: (dim value, fact value) pairs.
                out_keys.append(np.repeat(left, len(right)).astype(np.int64))
                out_values.append(np.tile(right, len(left)))
                index += 2
            else:
                index += 1  # unmatched side: inner join drops it
        if not out_keys:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.astype(np.float64)
        return np.concatenate(out_keys), np.concatenate(out_values)

    def working_bytes(self, input_nbytes):
        return max(256 << 20, input_nbytes * PAPER_TABLE_RATIO // 8)

    def partition_key(self, keys):
        return keys // _JOIN_TAG


class HiveExecutor:
    """Runs the supported query shapes as MapReduce job chains."""

    def __init__(self, ctx=None, cluster: ClusterSpec = PAPER_CLUSTER):
        from repro.uarch.perfctx import context_or_null

        self.ctx = context_or_null(ctx)
        self.cluster = cluster
        self._tables: dict = {}

    def register(self, name: str, table: Table, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._tables[name] = (table, nbytes)

    def execute(self, sql: str) -> QueryResult:
        return self.run_plan(parse(sql))

    def run_plan(self, query: Query) -> QueryResult:
        stats = QueryStats()
        # The chained MapReduce jobs each charge their own ledger; this
        # one just concatenates their phases into the query's JobCost.
        ledger = CostLedger(self.cluster, ctx=self.ctx)
        if query.join is not None:
            result = self._join_aggregate(query, stats, ledger)
        elif query.is_aggregate:
            result = self._aggregate(query, stats, ledger)
        else:
            result = self._select(query, stats, ledger)
        stats.rows_out = result.num_rows
        return QueryResult(table=result, stats=stats, cost=ledger.job)

    # -- plans -------------------------------------------------------------------

    def _runtime(self) -> MapReduceRuntime:
        return MapReduceRuntime(cluster=self.cluster, ctx=self.ctx)

    def _lookup(self, name: str):
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"table {name!r} is not registered") from None

    def _row_file(self, dfs: Dfs, label: str, num_rows: int, nbytes: int):
        return dfs.put(label, np.arange(num_rows, dtype=np.int64), nbytes)

    def _mask(self, table: Table, predicates: list) -> np.ndarray:
        mask = np.ones(table.num_rows, dtype=bool)
        for predicate in predicates:
            mask &= Predicate(predicate.column, predicate.op,
                              predicate.literal).mask(table)
        return mask

    def _select(self, query: Query, stats: QueryStats,
                ledger: CostLedger) -> Table:
        table, nbytes = self._lookup(query.table.name)
        stats.rows_scanned = table.num_rows
        stats.input_bytes = nbytes
        stats.tables.append(query.table.name)
        columns = [c.split(".", 1)[-1] for c in query.select_columns] \
            or table.column_names
        mask = self._mask(table, query.where)
        stats.rows_filtered = int(mask.sum())

        file = self._row_file(Dfs(), f"hive:{query.table.name}",
                              table.num_rows, nbytes)
        job = _FilterJob(table.column(columns[0]).astype(np.float64), mask)
        result = self._runtime().run(job, file)
        ledger.absorb(result.cost)
        rows = result.output_keys
        return Table("result", {c: table.column(c)[rows] for c in columns})

    def _aggregate(self, query: Query, stats: QueryStats,
                   ledger: CostLedger) -> Table:
        table, nbytes = self._lookup(query.table.name)
        stats.rows_scanned = table.num_rows
        stats.input_bytes = nbytes
        stats.tables.append(query.table.name)
        if len(query.group_by) > 1:
            raise SqlError("Hive execution supports one GROUP BY column")
        mask = self._mask(table, query.where)
        rows = np.nonzero(mask)[0]
        stats.rows_filtered = len(rows)

        group_col = query.group_by[0].split(".", 1)[-1] if query.group_by else None
        group_keys = (
            table.column(group_col).astype(np.int64) if group_col
            else np.zeros(table.num_rows, dtype=np.int64)
        )
        out: dict = {}
        group_values = None
        for aggregate in query.aggregates:
            column = aggregate.column.split(".", 1)[-1]
            values = (
                np.ones(table.num_rows) if aggregate.column == "*"
                else table.column(column).astype(np.float64)
            )
            file = Dfs().put("hive:agg-rows", rows,
                             int(nbytes * mask.mean()) or 1)
            job = _AggregateJob(group_keys, values, aggregate.func)
            result = self._runtime().run(job, file)
            ledger.absorb(result.cost)
            folded = result.output_values
            if group_col is None and len(folded) == 0:
                # Empty relation, global aggregate: COUNT/SUM fold to 0,
                # MIN/MAX to NaN (NULL) -- matching the columnar engine.
                fill = 0.0 if aggregate.func in ("count", "sum") else np.nan
                folded = np.array([fill])
                result_keys = np.array([0], dtype=np.int64)
            else:
                result_keys = result.output_keys
            if group_values is None:
                group_values = result_keys
            out[aggregate.alias] = folded
        columns: dict = {}
        if group_col:
            columns[group_col] = group_values
        columns.update(out)
        return Table("result", columns)

    def _join_aggregate(self, query: Query, stats: QueryStats,
                        ledger: CostLedger) -> Table:
        """JOIN keyed on the ON columns, then the aggregation job.

        Supports the suite's join shape: one aggregate over the fact
        table's value column, grouped by one dimension column.
        """
        if not query.is_aggregate or len(query.group_by) != 1 \
                or len(query.aggregates) != 1:
            raise SqlError(
                "Hive execution supports JOIN only as join + single "
                "aggregate + single GROUP BY"
            )
        left_table, left_bytes = self._lookup(query.table.name)
        right_table, right_bytes = self._lookup(query.join.table.name)
        stats.rows_scanned = left_table.num_rows + right_table.num_rows
        stats.input_bytes = left_bytes + right_bytes
        stats.tables.extend([query.table.name, query.join.table.name])

        def side_of(qualified: str):
            alias, column = qualified.split(".", 1)
            if alias in (query.table.alias, query.table.name):
                return left_table, column
            return right_table, column

        left_side, left_key_col = side_of(query.join.left_column)
        right_side, right_key_col = side_of(query.join.right_column)
        group_table, group_col = side_of(query.group_by[0])
        agg = query.aggregates[0]
        value_table, value_col = side_of(agg.column)
        if agg.func != "sum":
            raise SqlError("Hive join plan supports SUM aggregates")
        if group_table is value_table:
            raise SqlError("group and value columns must come from "
                           "opposite join sides")

        # Job 1: repartition join -> (group value, fact value) pairs.
        dim, fact = (left_side, right_side) if group_table is left_side \
            else (right_side, left_side)
        dim_key = left_key_col if dim is left_side else right_key_col
        fact_key = right_key_col if dim is left_side else left_key_col
        join_job = _RepartitionJoinJob(
            dim.column(dim_key).astype(np.int64),
            dim.column(group_col).astype(np.float64),
            fact.column(fact_key).astype(np.int64),
            fact.column(value_col).astype(np.float64),
        )
        dfs = Dfs()
        total_rows = dim.num_rows + fact.num_rows
        file = dfs.put("hive:join-rows", np.arange(total_rows, dtype=np.int64),
                       left_bytes + right_bytes)
        joined = self._runtime().run(join_job, file)
        ledger.absorb(joined.cost)
        stats.rows_joined = len(joined.output_keys)

        # Job 2: group the joined pairs and fold.
        pair_file = Dfs().put(
            "hive:join-pairs",
            np.arange(len(joined.output_keys), dtype=np.int64),
            len(joined.output_keys) * 16,
        )
        agg_job = _AggregateJob(joined.output_keys, joined.output_values, "sum")
        result = self._runtime().run(agg_job, pair_file)
        ledger.absorb(result.cost)
        group_name = query.group_by[0].replace(".", "_", 1) \
            if "." in query.group_by[0] else query.group_by[0]
        return Table("result", {
            group_name: result.output_keys,
            agg.alias: result.output_values,
        })
