"""CPI model: turn event counts into cycles, seconds, and MIPS.

The paper reports MIPS (Figure 3-1) from hardware counters; we model it
with a classic stall-accounting CPI decomposition:

    cycles = instructions * base_cpi
           + (L1D misses + L1I misses) * L2 latency
           + L2 misses * (L3 latency | memory latency)
           + L3 misses * memory latency
           + (ITLB + DTLB misses) * page-walk latency

Out-of-order overlap is approximated by the overlap factor: only a
fraction of each miss's latency is exposed as a stall.  The paper notes
L1D miss penalties are largely hidden by the pipeline (Section 6.3.2),
which is why the L1D contribution uses a much smaller exposed fraction.
"""

from __future__ import annotations

from repro.uarch.events import PerfEvents, ProfileReport
from repro.uarch.hierarchy import MachineConfig

#: Fraction of each miss latency exposed as stall cycles (the rest is
#: overlapped by the out-of-order core).
L1D_EXPOSED = 0.15
L1I_EXPOSED = 0.85
L2_EXPOSED = 0.55
L3_EXPOSED = 0.75
TLB_EXPOSED = 0.80


def stall_cycles(events: PerfEvents, machine: MachineConfig) -> float:
    """Exposed stall cycles implied by the miss counts."""
    l2_fill_latency = machine.l3_latency if machine.l3 is not None else machine.mem_latency
    cycles = events.l1d_misses * machine.l2_latency * L1D_EXPOSED
    cycles += events.l1i_misses * machine.l2_latency * L1I_EXPOSED
    cycles += events.l2_misses * l2_fill_latency * L2_EXPOSED
    if machine.l3 is not None:
        cycles += events.l3_misses * machine.mem_latency * L3_EXPOSED
    cycles += (events.itlb_misses + events.dtlb_misses) * machine.tlb_walk_latency * TLB_EXPOSED
    return cycles


def finalize(
    events: PerfEvents,
    machine: MachineConfig,
    cores_used: int = 1,
    metadata: dict = None,
) -> ProfileReport:
    """Produce the run's :class:`ProfileReport` from its event counts.

    ``cores_used`` spreads the instruction stream over that many cores;
    MIPS therefore reports aggregate throughput, matching the paper's
    cluster-level Figure 3-1 presentation.
    """
    if cores_used <= 0:
        raise ValueError("cores_used must be positive")
    cycles = events.instructions * machine.base_cpi + stall_cycles(events, machine)
    seconds = cycles / machine.freq_hz / cores_used
    return ProfileReport(
        events=events,
        cycles=cycles,
        seconds=seconds,
        metadata=dict(metadata or {}),
    )
