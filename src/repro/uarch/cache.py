"""Set-associative cache model with LRU replacement.

This is the building block of the simulated memory hierarchy that stands
in for the Xeon E5645 / E5310 hardware counters in the paper's
characterization study.  The model is deliberately simple -- physical
indexing, true LRU, no prefetching -- because the reproduction targets the
paper's *qualitative* cache-behavior findings (relative MPKI orderings and
working-set effects), not cycle accuracy.

Accesses carry a ``weight``: bulk access patterns are expanded with stride
sampling (:mod:`repro.uarch.sampling`), so one simulated access may stand
for many real ones.  Weights affect the statistics only; the replacement
state is updated once per simulated access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``size_bytes`` must be ``ways * line_size * num_sets`` with a
    power-of-two number of sets, mirroring real hardware indexing.
    """

    name: str
    size_bytes: int
    ways: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ValueError(f"{self.name}: sizes and ways must be positive")
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.ways * self.line_size) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"ways*line_size = {self.ways * self.line_size}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    def scaled(self, factor: int) -> "CacheConfig":
        """A proportionally smaller cache for scaled-down experiments.

        Capacity shrinks by ``factor`` while associativity and line size
        stay fixed, so working-set-versus-capacity crossovers occur at the
        same relative data sizes as on the real machine.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        min_size = self.ways * self.line_size
        new_size = max(min_size, self.size_bytes // factor)
        sets = max(1, new_size // min_size)
        return CacheConfig(
            name=self.name,
            size_bytes=sets * min_size,
            ways=self.ways,
            line_size=self.line_size,
        )


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._sets = [OrderedDict() for _ in range(config.num_sets)]
        self.accesses = 0.0
        self.misses = 0.0

    @property
    def hits(self) -> float:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses <= 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, line_addr: int, weight: float = 1.0) -> bool:
        """Touch one cache line; return True on hit, False on miss.

        ``line_addr`` is the address already shifted down by the line
        size (a line number, not a byte address).
        """
        index = line_addr % self._num_sets
        cache_set = self._sets[index]
        self.accesses += weight
        entry_key = line_addr
        if entry_key in cache_set:
            cache_set.move_to_end(entry_key)
            return True
        self.misses += weight
        cache_set[entry_key] = True
        if len(cache_set) > self.config.ways:
            cache_set.popitem(last=False)
        return False

    def access_many(self, line_addrs, weights=1.0) -> np.ndarray:
        """Touch a batch of cache lines; return a boolean hit array.

        Equivalent to calling :meth:`access` once per element of
        ``line_addrs`` in order, but with the per-access method dispatch
        and statistics updates hoisted out of the loop -- the simulator's
        hottest path runs through here.  ``weights`` is either one scalar
        applied to every access or an array of per-access weights.
        """
        line_addrs = np.asarray(line_addrs, dtype=np.int64)
        n = int(line_addrs.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        sets = self._sets
        ways = self.config.ways
        indices = (line_addrs % self._num_sets).tolist()
        lines = line_addrs.tolist()
        miss_idx = []
        append_miss = miss_idx.append
        for i, (line, index) in enumerate(zip(lines, indices)):
            cache_set = sets[index]
            if line in cache_set:
                cache_set.move_to_end(line)
            else:
                append_miss(i)
                cache_set[line] = True
                if len(cache_set) > ways:
                    cache_set.popitem(last=False)
        hits = np.ones(n, dtype=bool)
        if miss_idx:
            hits[miss_idx] = False
        if np.ndim(weights) == 0:
            self.accesses += float(weights) * n
            self.misses += float(weights) * len(miss_idx)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            self.accesses += float(weights.sum())
            if miss_idx:
                self.misses += float(weights[~hits].sum())
        return hits

    def prime_many(self, line_addrs) -> None:
        """Install a batch of lines without counting statistics.

        Equivalent to calling :meth:`prime` once per element in order.
        """
        sets = self._sets
        num_sets = self._num_sets
        ways = self.config.ways
        for line in np.asarray(line_addrs, dtype=np.int64).tolist():
            cache_set = sets[line % num_sets]
            cache_set[line] = True
            if len(cache_set) > ways:
                cache_set.popitem(last=False)

    def contains(self, line_addr: int) -> bool:
        """True if the line is currently resident (no state change)."""
        return line_addr in self._sets[line_addr % self._num_sets]

    def prime(self, line_addr: int) -> None:
        """Install a line without counting statistics (warm-up priming,
        mirroring the paper's post-ramp-up measurement window)."""
        cache_set = self._sets[line_addr % self._num_sets]
        cache_set[line_addr] = True
        if len(cache_set) > self.config.ways:
            cache_set.popitem(last=False)

    def reset_stats(self) -> None:
        self.accesses = 0.0
        self.misses = 0.0

    def flush(self) -> None:
        """Invalidate all lines and clear statistics."""
        for cache_set in self._sets:
            cache_set.clear()
        self.reset_stats()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
