"""The profiling facade: what ``perf`` was to the paper's testbed.

Engines and workload kernels are instrumented against this API.  They
declare what they *do* -- abstract instruction counts and memory access
patterns over named regions -- and the context turns those declarations
into simulated cache/TLB traffic and event counts on a configured machine
(:data:`repro.uarch.hierarchy.XEON_E5645` or ``XEON_E5310``).

Two implementations share the interface:

* :class:`PerfContext` -- full simulation (events + memory hierarchy).
* :class:`NullPerfContext` -- every method is a no-op, for running the
  engines functionally at full speed (unit tests, data preparation).

Sampling strategy (see :mod:`repro.uarch.sampling`): data-side patterns
are contracted by a small factor (default 8) together with the machine's
capacities, preserving working-set/capacity ratios; instruction fetches
are subsampled much more aggressively (default 1/16384) because their
locality structure is generated, not replayed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro.uarch import cpu
from repro.uarch.codemodel import (
    CodeProfile,
    SPEC_CODE,
    generate_fetch_addresses,
)
from repro.obs.trace import NULL_TRACER
from repro.uarch.events import PerfEvents, ProfileReport
from repro.uarch.hierarchy import MachineConfig, MemorySystem
from repro.uarch.regions import AddressSpace, Region
from repro.uarch.sampling import plan_samples

#: Default code profile when a kernel never pushes one.
DEFAULT_PROFILE = SPEC_CODE


class NullPerfContext:
    """No-op profiler: engines run functionally with zero overhead."""

    profiling = False

    #: Always-zero event record so engines can read ``ctx.events``
    #: uniformly (e.g. per-phase instruction deltas) without branching.
    events = PerfEvents()

    #: Span tracer (see :mod:`repro.obs.trace`); the shared null tracer
    #: unless the harness attaches a recording one for a traced run.
    tracer = NULL_TRACER

    #: Fault injector (see :mod:`repro.faults`); None unless the harness
    #: attaches one for a chaos run.  Engines normalize it through
    #: :func:`repro.faults.inject.resolve_faults`.
    faults = None

    # -- span tracing --------------------------------------------------------
    def span(self, name: str, category: str = "", **attrs):
        """Open a trace span scoped to this context's event counters.

        Returns a context manager; with the null tracer (the default)
        it is a shared no-op object, so instrumentation costs nothing
        when tracing is off.
        """
        return self.tracer.span(name, ctx=self, category=category, **attrs)

    # -- code profile scoping ------------------------------------------------
    @contextmanager
    def code(self, profile: CodeProfile):
        yield self

    # -- instruction counting ------------------------------------------------
    def int_ops(self, n: float) -> None:
        pass

    def fp_ops(self, n: float) -> None:
        pass

    def branch_ops(self, n: float) -> None:
        pass

    # -- memory patterns -----------------------------------------------------
    def touch(self, name: str, real_size: int) -> None:
        pass

    def seq_read(self, name: str, nbytes: float, elem: int = 8) -> None:
        pass

    def seq_write(self, name: str, nbytes: float, elem: int = 8) -> None:
        pass

    def rand_read(self, name: str, count: float, elem: int = 8) -> None:
        pass

    def rand_write(self, name: str, count: float, elem: int = 8) -> None:
        pass

    def stride_read(self, name: str, count: float, stride: int, elem: int = 8) -> None:
        pass

    def skewed_read(
        self, name: str, count: float, elem: int = 8,
        hot_fraction: float = 0.1, hot_prob: float = 0.9,
    ) -> None:
        pass

    def skewed_write(
        self, name: str, count: float, elem: int = 8,
        hot_fraction: float = 0.1, hot_prob: float = 0.9,
    ) -> None:
        pass

    def finalize(self, cores_used: int = 1, metadata: dict = None) -> ProfileReport:
        return ProfileReport(events=PerfEvents(), metadata=dict(metadata or {}))


#: Shared no-op instance: the default ``ctx`` argument throughout the suite.
NULL_CONTEXT = NullPerfContext()


def context_or_null(ctx: Optional[NullPerfContext]) -> NullPerfContext:
    """Normalize an optional ctx argument: None means 'do not profile'."""
    return NULL_CONTEXT if ctx is None else ctx


class PerfContext(NullPerfContext):
    """Full profiling context simulating one machine configuration."""

    profiling = True

    #: Real instructions accumulated before synthesizing an I-fetch batch.
    FLUSH_THRESHOLD = 4_194_304

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        contraction: int = 8,
        ifetch_contraction: int = 16384,
        seed: int = 0,
        cap: int = 65536,
        tracer=None,
    ):
        if contraction <= 0 or ifetch_contraction <= 0:
            raise ValueError("contraction factors must be positive")
        self.machine = machine
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.contraction = contraction
        self.ifetch_contraction = ifetch_contraction
        self.cap = cap
        self.events = PerfEvents()
        self.rng = np.random.default_rng(seed)
        self.space = AddressSpace(contraction=contraction)
        self.memsys: Optional[MemorySystem] = None
        if machine is not None:
            self.memsys = MemorySystem(machine.contracted(contraction), self.events)
        self._profile_stack: list = [DEFAULT_PROFILE]
        self._code_cursors: dict = {}
        self._warmed_profiles: set = set()
        self._pending_instructions = 0.0

    # -- code profile scoping ------------------------------------------------

    @contextmanager
    def code(self, profile: CodeProfile):
        """Run the enclosed phase under ``profile``'s code working set."""
        self._flush_ifetch()
        self._profile_stack.append(profile)
        try:
            yield self
        finally:
            self._flush_ifetch()
            self._profile_stack.pop()

    # -- instruction counting ------------------------------------------------

    #: Implicit operand traffic: every compute instruction drags along
    #: stack/spill/operand loads and stores that hit L1D (so they are not
    #: routed through the cache simulator -- the paper omits L1D MPKI for
    #: the same reason: those misses are hidden).  They do count as
    #: retired instructions, matching Figure 4's load/store shares.
    IMPLICIT_LOAD_FACTOR = 0.30
    IMPLICIT_STORE_FACTOR = 0.10

    def int_ops(self, n: float) -> None:
        if n <= 0:
            return
        self.events.int_ops += n
        self._count_compute(n)

    def fp_ops(self, n: float) -> None:
        if n <= 0:
            return
        self.events.fp_ops += n
        self._count_compute(n)

    def branch_ops(self, n: float) -> None:
        if n <= 0:
            return
        self.events.branches += n
        self._count_compute(n)

    def _count_compute(self, n: float) -> None:
        self.events.loads += self.IMPLICIT_LOAD_FACTOR * n
        self.events.stores += self.IMPLICIT_STORE_FACTOR * n
        self._note_instructions(
            (1.0 + self.IMPLICIT_LOAD_FACTOR + self.IMPLICIT_STORE_FACTOR) * n
        )

    # -- memory patterns -----------------------------------------------------

    def touch(self, name: str, real_size: int) -> None:
        """Declare (or grow) the named region to ``real_size`` bytes."""
        self.space.region(name, real_size)

    def seq_read(self, name: str, nbytes: float, elem: int = 8) -> None:
        self._sequential(name, nbytes, elem, is_write=False)

    def seq_write(self, name: str, nbytes: float, elem: int = 8) -> None:
        self._sequential(name, nbytes, elem, is_write=True)

    def rand_read(self, name: str, count: float, elem: int = 8) -> None:
        self._random(name, count, elem, is_write=False)

    def rand_write(self, name: str, count: float, elem: int = 8) -> None:
        self._random(name, count, elem, is_write=True)

    def stride_read(self, name: str, count: float, stride: int, elem: int = 8) -> None:
        """``count`` accesses ``stride`` real bytes apart (column walks,
        pointer-chasing with regular layout, matrix transposes)."""
        if count <= 0:
            return
        region = self._region(name, int(count * max(stride, elem)))
        plan = plan_samples(count, self.contraction, self.cap)
        self._count_data_instr(count, is_write=False)
        if self.memsys is None or plan.count == 0:
            return
        offsets = (
            region.cursor + np.arange(plan.count, dtype=np.int64) * int(stride)
        ) % region.size
        region.cursor = int(offsets[-1]) if plan.count else region.cursor
        self.memsys.data_access(region.base + offsets, plan.weight, is_write=False)

    def skewed_read(
        self, name: str, count: float, elem: int = 8,
        hot_fraction: float = 0.1, hot_prob: float = 0.9,
    ) -> None:
        self._skewed(name, count, elem, hot_fraction, hot_prob, is_write=False)

    def skewed_write(
        self, name: str, count: float, elem: int = 8,
        hot_fraction: float = 0.1, hot_prob: float = 0.9,
    ) -> None:
        self._skewed(name, count, elem, hot_fraction, hot_prob, is_write=True)

    # -- finalization ----------------------------------------------------------

    def finalize(self, cores_used: int = 1, metadata: dict = None) -> ProfileReport:
        """Flush pending instruction fetches and produce the run report."""
        self._flush_ifetch()
        if self.memsys is not None:
            self.memsys.harvest()
            machine = self.machine
        else:
            # Event counting without a machine: report raw counts only.
            from repro.uarch.hierarchy import XEON_E5645

            machine = XEON_E5645
        return cpu.finalize(self.events, machine, cores_used=cores_used, metadata=metadata)

    # -- internals -------------------------------------------------------------

    def _region(self, name: str, default_size: int) -> Region:
        if name in self.space:
            return self.space.get(name)
        return self.space.region(name, max(1, default_size))

    def _note_instructions(self, n: float) -> None:
        self._pending_instructions += n
        if self._pending_instructions >= self.FLUSH_THRESHOLD:
            self._flush_ifetch()

    def _count_data_instr(self, count: float, is_write: bool) -> None:
        if is_write:
            self.events.stores += count
        else:
            self.events.loads += count
        self._note_instructions(count)

    def _flush_ifetch(self) -> None:
        pending = self._pending_instructions
        self._pending_instructions = 0.0
        if pending <= 0 or self.memsys is None:
            return
        profile = self._profile_stack[-1]
        plan = plan_samples(pending, self.ifetch_contraction, self.cap)
        if plan.count == 0:
            return
        region = self.space.region("__code__:" + profile.name, profile.footprint)
        if profile.name not in self._warmed_profiles:
            self._warmed_profiles.add(profile.name)
            self._warm_code(profile, region)
        cursor = self._code_cursors.get(profile.name, 0)
        addresses, cursor = generate_fetch_addresses(
            profile,
            base=region.base,
            contraction=self.contraction,
            count=plan.count,
            cursor=cursor,
            rng=self.rng,
            step=max(1, int(plan.weight * profile.bytes_per_instr / self.contraction)),
        )
        self._code_cursors[profile.name] = cursor
        self.memsys.inst_fetch(addresses, plan.weight)

    def _warm_code(self, profile: CodeProfile, region) -> None:
        """Prime L1I/ITLB with the profile's hot loop and warm set.

        The paper collects counters after a ~30 s ramp-up (Section
        6.1.1); short simulated runs would otherwise be dominated by
        one-time cold code misses that the measurement window excludes.
        """
        memsys = self.memsys
        if memsys is None:
            return
        line = memsys.machine.l1i.line_size
        hot_size = max(line, profile.hot_bytes // self.contraction)
        hot_offsets = np.arange(0, hot_size, line, dtype=np.int64)
        memsys.l1i.prime_many(
            (region.base + hot_offsets) >> (line.bit_length() - 1)
        )
        warm_size = max(hot_size, profile.warm_bytes // self.contraction)
        page = memsys.itlb.config.page_size
        warm_offsets = np.arange(0, warm_size, page, dtype=np.int64)
        memsys.itlb.prime_many(region.base + warm_offsets)

    def _sequential(self, name: str, nbytes: float, elem: int, is_write: bool) -> None:
        if nbytes <= 0:
            return
        region = self._region(name, int(nbytes))
        count = max(1.0, nbytes / max(elem, 1))
        self._count_data_instr(count, is_write)
        if self.memsys is None:
            return
        line = self.memsys.machine.l1d.line_size
        contracted = max(line, int(nbytes) // self.contraction)
        total_lines = max(1, contracted // line)
        plan = plan_samples(total_lines * self.contraction, self.contraction, self.cap)
        if plan.count == 0:
            return
        stride_lines = max(1, total_lines // plan.count)
        offsets = (
            region.cursor
            + np.arange(plan.count, dtype=np.int64) * stride_lines * line
        ) % region.size
        region.cursor = (region.cursor + contracted) % region.size
        weight = (nbytes / line) / plan.count
        self.memsys.data_access(region.base + offsets, weight, is_write)

    def _random(self, name: str, count: float, elem: int, is_write: bool) -> None:
        if count <= 0:
            return
        region = self._region(name, int(count * elem))
        plan = plan_samples(count, self.contraction, self.cap)
        self._count_data_instr(count, is_write)
        if self.memsys is None or plan.count == 0:
            return
        offsets = self.rng.integers(0, region.size, size=plan.count, dtype=np.int64)
        offsets -= offsets % max(1, min(elem, 64))
        self.memsys.data_access(region.base + offsets, plan.weight, is_write)

    def _skewed(
        self, name: str, count: float, elem: int,
        hot_fraction: float, hot_prob: float, is_write: bool,
    ) -> None:
        """Accesses with a hot subset: ``hot_prob`` of accesses land in the
        first ``hot_fraction`` of the region (caches, popular keys)."""
        if count <= 0:
            return
        if not (0.0 < hot_fraction <= 1.0 and 0.0 <= hot_prob <= 1.0):
            raise ValueError("hot_fraction in (0,1], hot_prob in [0,1]")
        region = self._region(name, int(count * elem))
        plan = plan_samples(count, self.contraction, self.cap)
        self._count_data_instr(count, is_write)
        if self.memsys is None or plan.count == 0:
            return
        hot_size = max(64, int(region.size * hot_fraction))
        is_hot = self.rng.random(plan.count) < hot_prob
        offsets = np.empty(plan.count, dtype=np.int64)
        n_hot = int(is_hot.sum())
        if n_hot:
            offsets[is_hot] = self.rng.integers(0, hot_size, size=n_hot, dtype=np.int64)
        n_cold = plan.count - n_hot
        if n_cold:
            offsets[~is_hot] = self.rng.integers(0, region.size, size=n_cold, dtype=np.int64)
        offsets -= offsets % max(1, min(elem, 64))
        self.memsys.data_access(region.base + offsets, plan.weight, is_write)
