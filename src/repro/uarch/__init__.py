"""Micro-architecture simulation substrate.

Replaces the paper's hardware performance counters: a set-associative
cache/TLB hierarchy (Xeon E5645 and E5310 configurations), an
instruction-fetch model capturing code-footprint/software-stack depth,
a CPI model, and the :class:`~repro.uarch.perfctx.PerfContext`
instrumentation facade the engines are written against.
"""

from repro.uarch.cache import Cache, CacheConfig
from repro.uarch.codemodel import (
    ALL_PROFILES,
    CodeProfile,
    DATABASE_STACK,
    FRAMEWORK_STACK,
    HPC_KERNEL,
    MPI_STACK,
    NOSQL_STACK,
    PARSEC_KERNEL,
    SERVER_STACK,
    SPEC_CODE,
)
from repro.uarch.events import PerfEvents, ProfileReport
from repro.uarch.hierarchy import (
    MACHINES,
    MachineConfig,
    MemorySystem,
    XEON_E5310,
    XEON_E5645,
)
from repro.uarch.perfctx import (
    NULL_CONTEXT,
    NullPerfContext,
    PerfContext,
    context_or_null,
)
from repro.uarch.tlb import Tlb, TlbConfig

__all__ = [
    "ALL_PROFILES",
    "Cache",
    "CacheConfig",
    "CodeProfile",
    "DATABASE_STACK",
    "FRAMEWORK_STACK",
    "HPC_KERNEL",
    "MACHINES",
    "MPI_STACK",
    "MachineConfig",
    "MemorySystem",
    "NOSQL_STACK",
    "NULL_CONTEXT",
    "NullPerfContext",
    "PARSEC_KERNEL",
    "PerfContext",
    "PerfEvents",
    "ProfileReport",
    "SERVER_STACK",
    "SPEC_CODE",
    "Tlb",
    "TlbConfig",
    "XEON_E5310",
    "XEON_E5645",
    "context_or_null",
]
