"""Machine configurations and the simulated memory hierarchy.

Provides the two testbed processors of the paper -- the Intel Xeon E5645
(three cache levels, Table 5) and the Xeon E5310 (two cache levels,
Table 7) -- and the :class:`MemorySystem` that plays the role of the
hardware: it routes simulated data accesses and instruction fetches
through TLBs and the cache hierarchy and accumulates the perf events the
characterization study reports.

Machines are *contracted* before simulation (see
:mod:`repro.uarch.sampling`): every capacity (cache bytes, TLB entries) is
divided by the global contraction factor while line size, page size,
associativity, latencies, and clock rate stay fixed.  Miss *counts* then
come out in real units because each simulated access carries the
contraction as its weight.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.uarch.cache import Cache, CacheConfig
from repro.uarch.events import PerfEvents
from repro.uarch.tlb import Tlb, TlbConfig

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class MachineConfig:
    """A processor model: core geometry, cache hierarchy, and latencies.

    Latencies are cycles added per miss at each boundary; they feed the
    CPI model in :mod:`repro.uarch.cpu`.
    """

    name: str
    freq_hz: float
    cores: int
    sockets: int
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l3: Optional[CacheConfig]
    itlb: TlbConfig
    dtlb: TlbConfig
    base_cpi: float = 0.45
    l2_latency: int = 10
    l3_latency: int = 38
    mem_latency: int = 210
    tlb_walk_latency: int = 30

    @property
    def total_cores(self) -> int:
        return self.cores * self.sockets

    def contracted(self, factor: int) -> "MachineConfig":
        """Scale all capacities down by ``factor`` for simulation."""
        if factor <= 0:
            raise ValueError("contraction factor must be positive")
        if factor == 1:
            return self
        return replace(
            self,
            l1i=self.l1i.scaled(factor),
            l1d=self.l1d.scaled(factor),
            l2=self.l2.scaled(factor),
            l3=self.l3.scaled(factor) if self.l3 is not None else None,
            itlb=self.itlb.scaled(factor),
            dtlb=self.dtlb.scaled(factor),
        )

    def summary(self) -> dict:
        """Human-readable configuration rows (paper Tables 5 and 7)."""

        def fmt(config: Optional[CacheConfig]) -> str:
            if config is None:
                return "None"
            size = config.size_bytes
            if size >= MB:
                return f"{size // MB}MB"
            return f"{size // KB}KB"

        return {
            "CPU Type": self.name,
            "Cores": f"{self.cores} cores@{self.freq_hz / 1e9:.2f}G",
            "L1 DCache": fmt(self.l1d),
            "L1 ICache": fmt(self.l1i),
            "L2 Cache": fmt(self.l2),
            "L3 Cache": fmt(self.l3),
        }


#: Intel Xeon E5645 (paper Table 5): 6 cores @ 2.40 GHz, 32 KB L1I/L1D,
#: 256 KB private L2, 12 MB shared L3, three cache levels.
XEON_E5645 = MachineConfig(
    name="Intel Xeon E5645",
    freq_hz=2.40e9,
    cores=6,
    sockets=2,
    l1i=CacheConfig("L1I", 32 * KB, ways=4),
    l1d=CacheConfig("L1D", 32 * KB, ways=8),
    l2=CacheConfig("L2", 256 * KB, ways=8),
    l3=CacheConfig("L3", 12 * MB, ways=16),
    itlb=TlbConfig("ITLB", entries=128),
    # perf's DTLB miss events count completed page walks, i.e. misses
    # behind the 512-entry second-level TLB -- model that reach directly.
    dtlb=TlbConfig("DTLB", entries=512),
)

#: Intel Xeon E5310 (paper Table 7): 4 cores @ 1.60 GHz, two cache levels
#: only -- the L2 is the last-level cache (4 MB visible per core pair).
XEON_E5310 = MachineConfig(
    name="Intel Xeon E5310",
    freq_hz=1.60e9,
    cores=4,
    sockets=2,
    l1i=CacheConfig("L1I", 32 * KB, ways=4),
    l1d=CacheConfig("L1D", 32 * KB, ways=8),
    l2=CacheConfig("L2", 4 * MB, ways=16),
    l3=None,
    itlb=TlbConfig("ITLB", entries=128),
    dtlb=TlbConfig("DTLB", entries=256),
    base_cpi=0.55,
    l2_latency=14,
    mem_latency=240,
)

MACHINES = {m.name: m for m in (XEON_E5645, XEON_E5310)}


class MemorySystem:
    """The simulated cache/TLB hierarchy for one profiled run.

    Data accesses walk DTLB -> L1D -> L2 -> (L3) -> memory; instruction
    fetches walk ITLB -> L1I -> L2 -> (L3) -> memory.  Bytes fetched from
    memory (last-level misses times the real line size) accumulate into
    ``events.mem_bytes`` -- the operation-intensity denominator, which is
    why intensity differs between the E5310 and the E5645 in Figure 5.
    """

    REAL_LINE_SIZE = 64

    #: DRAM traffic per demand LLC miss: hardware prefetchers, dirty
    #: writebacks, and device DMA roughly triple the demand-fill bytes --
    #: the operation-intensity denominator counts all of it.
    MEM_TRAFFIC_AMPLIFICATION = 3.0

    #: Steady-state code residency: instruction lines that miss L1I are
    #: almost always L2/L3 resident (code working sets persist while data
    #: streams through).  Instruction fetches are heavily subsampled, so
    #: their lower-level reuse cannot be replayed through the stateful
    #: caches; these statistical miss rates stand in for it.
    CODE_L2_MISS_RATE = 0.08
    CODE_L3_MISS_RATE = 0.10

    def __init__(self, machine: MachineConfig, events: PerfEvents):
        self.machine = machine
        self.events = events
        self.l1i = Cache(machine.l1i)
        self.l1d = Cache(machine.l1d)
        self.l2 = Cache(machine.l2)
        self.l3 = Cache(machine.l3) if machine.l3 is not None else None
        self.itlb = Tlb(machine.itlb)
        self.dtlb = Tlb(machine.dtlb)
        self._line_bits = machine.l1d.line_size.bit_length() - 1
        self._code_l2_accesses = 0.0
        self._code_l2_misses = 0.0
        self._code_l3_accesses = 0.0
        self._code_l3_misses = 0.0

    def data_access(self, addresses, weight: float, is_write: bool = False) -> None:
        """Route a batch of simulated data accesses through the hierarchy.

        Levels are processed batch-at-a-time: the DTLB translates every
        address, L1D filters the batch, and only the L1 misses (in their
        original order) proceed to L2, then L3.  Because each level's
        state depends only on the sequence of accesses *it* sees, this is
        bit-identical to walking the levels one address at a time.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return
        self.dtlb.access_many(addresses, weight)
        lines = addresses >> self._line_bits
        l1_hits = self.l1d.access_many(lines, weight)
        to_l2 = lines[~l1_hits]
        if to_l2.size == 0:
            return
        l2_hits = self.l2.access_many(to_l2, weight)
        llc_misses = to_l2[~l2_hits]
        if self.l3 is not None and llc_misses.size:
            l3_hits = self.l3.access_many(llc_misses, weight)
            llc_misses = llc_misses[~l3_hits]
        if llc_misses.size:
            self.events.mem_bytes += (
                int(llc_misses.size) * weight * self.REAL_LINE_SIZE
                * self.MEM_TRAFFIC_AMPLIFICATION
            )

    def inst_fetch(self, addresses, weight: float) -> None:
        """Route a batch of simulated instruction fetches.

        ITLB and L1I are simulated statefully; below L1I the statistical
        code-residency model applies (see CODE_L2_MISS_RATE).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return
        self.itlb.access_many(addresses, weight)
        l1_hits = self.l1i.access_many(addresses >> self._line_bits, weight)
        l1_miss_count = int(addresses.size) - int(l1_hits.sum())
        if not l1_miss_count:
            return
        l2_in = l1_miss_count * weight
        l2_miss = l2_in * self.CODE_L2_MISS_RATE
        self._code_l2_accesses += l2_in
        self._code_l2_misses += l2_miss
        if self.l3 is not None:
            l3_miss = l2_miss * self.CODE_L3_MISS_RATE
            self._code_l3_accesses += l2_miss
            self._code_l3_misses += l3_miss
        else:
            l3_miss = l2_miss
        self.events.mem_bytes += (
            l3_miss * self.REAL_LINE_SIZE * self.MEM_TRAFFIC_AMPLIFICATION
        )

    def harvest(self) -> None:
        """Copy cache/TLB statistics into the shared event record."""
        ev = self.events
        ev.l1i_accesses = self.l1i.accesses
        ev.l1i_misses = self.l1i.misses
        ev.l1d_accesses = self.l1d.accesses
        ev.l1d_misses = self.l1d.misses
        ev.l2_accesses = self.l2.accesses + self._code_l2_accesses
        ev.l2_misses = self.l2.misses + self._code_l2_misses
        if self.l3 is not None:
            ev.l3_accesses = self.l3.accesses + self._code_l3_accesses
            ev.l3_misses = self.l3.misses + self._code_l3_misses
        ev.itlb_accesses = self.itlb.accesses
        ev.itlb_misses = self.itlb.misses
        ev.dtlb_accesses = self.dtlb.accesses
        ev.dtlb_misses = self.dtlb.misses
