"""TLB model: a small fully-associative LRU translation cache.

Drives the ITLB/DTLB MPKI results of the paper's Figure 6-2.  Pages are
fixed-size (4 KB by default, matching the testbed's Linux configuration);
an access translates a byte address to a page number and looks it up.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of one TLB: entry count and page size."""

    name: str
    entries: int
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"{self.name}: TLB must have at least one entry")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"{self.name}: page size must be a power of two")

    def scaled(self, factor: int) -> "TlbConfig":
        """A proportionally smaller TLB for scaled-down experiments."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return TlbConfig(
            name=self.name,
            entries=max(4, self.entries // factor),
            page_size=self.page_size,
        )


class Tlb:
    """Fully-associative LRU TLB."""

    def __init__(self, config: TlbConfig):
        self.config = config
        self._page_bits = config.page_size.bit_length() - 1
        self._entries = OrderedDict()
        self.accesses = 0.0
        self.misses = 0.0

    @property
    def miss_rate(self) -> float:
        if self.accesses <= 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, addr: int, weight: float = 1.0) -> bool:
        """Translate one byte address; return True on TLB hit."""
        page = addr >> self._page_bits
        self.accesses += weight
        if page in self._entries:
            self._entries.move_to_end(page)
            return True
        self.misses += weight
        self._entries[page] = True
        if len(self._entries) > self.config.entries:
            self._entries.popitem(last=False)
        return False

    def access_many(self, addrs, weights=1.0) -> np.ndarray:
        """Translate a batch of byte addresses; return a boolean hit array.

        Equivalent to calling :meth:`access` once per element of ``addrs``
        in order; the page-number shift is vectorized and the LRU loop is
        run with all lookups bound locally.  ``weights`` is one scalar for
        every access or an array of per-access weights.
        """
        pages = np.asarray(addrs, dtype=np.int64) >> self._page_bits
        n = int(pages.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        entries = self._entries
        capacity = self.config.entries
        miss_idx = []
        append_miss = miss_idx.append
        for i, page in enumerate(pages.tolist()):
            if page in entries:
                entries.move_to_end(page)
            else:
                append_miss(i)
                entries[page] = True
                if len(entries) > capacity:
                    entries.popitem(last=False)
        hits = np.ones(n, dtype=bool)
        if miss_idx:
            hits[miss_idx] = False
        if np.ndim(weights) == 0:
            self.accesses += float(weights) * n
            self.misses += float(weights) * len(miss_idx)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            self.accesses += float(weights.sum())
            if miss_idx:
                self.misses += float(weights[~hits].sum())
        return hits

    def prime_many(self, addrs) -> None:
        """Install a batch of translations without counting statistics.

        Equivalent to calling :meth:`prime` once per element in order.
        """
        entries = self._entries
        capacity = self.config.entries
        pages = np.asarray(addrs, dtype=np.int64) >> self._page_bits
        for page in pages.tolist():
            entries[page] = True
            if len(entries) > capacity:
                entries.popitem(last=False)

    def prime(self, addr: int) -> None:
        """Install a translation without counting statistics."""
        self._entries[addr >> self._page_bits] = True
        if len(self._entries) > self.config.entries:
            self._entries.popitem(last=False)

    def reset_stats(self) -> None:
        self.accesses = 0.0
        self.misses = 0.0

    def flush(self) -> None:
        self._entries.clear()
        self.reset_stats()
