"""TLB model: a small fully-associative LRU translation cache.

Drives the ITLB/DTLB MPKI results of the paper's Figure 6-2.  Pages are
fixed-size (4 KB by default, matching the testbed's Linux configuration);
an access translates a byte address to a page number and looks it up.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of one TLB: entry count and page size."""

    name: str
    entries: int
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"{self.name}: TLB must have at least one entry")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"{self.name}: page size must be a power of two")

    def scaled(self, factor: int) -> "TlbConfig":
        """A proportionally smaller TLB for scaled-down experiments."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return TlbConfig(
            name=self.name,
            entries=max(4, self.entries // factor),
            page_size=self.page_size,
        )


class Tlb:
    """Fully-associative LRU TLB."""

    def __init__(self, config: TlbConfig):
        self.config = config
        self._page_bits = config.page_size.bit_length() - 1
        self._entries = OrderedDict()
        self.accesses = 0.0
        self.misses = 0.0

    @property
    def miss_rate(self) -> float:
        if self.accesses <= 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, addr: int, weight: float = 1.0) -> bool:
        """Translate one byte address; return True on TLB hit."""
        page = addr >> self._page_bits
        self.accesses += weight
        if page in self._entries:
            self._entries.move_to_end(page)
            return True
        self.misses += weight
        self._entries[page] = True
        if len(self._entries) > self.config.entries:
            self._entries.popitem(last=False)
        return False

    def prime(self, addr: int) -> None:
        """Install a translation without counting statistics."""
        self._entries[addr >> self._page_bits] = True
        if len(self._entries) > self.config.entries:
            self._entries.popitem(last=False)

    def reset_stats(self) -> None:
        self.accesses = 0.0
        self.misses = 0.0

    def flush(self) -> None:
        self._entries.clear()
        self.reset_stats()
