"""Stride-sampling plans for bulk access-pattern expansion.

Simulating every memory access of a multi-megabyte workload through a
Python cache model is infeasible, so the profiler contracts the problem:
the machine's cache/TLB capacities and all data regions are divided by a
global ``contraction`` factor ``k``, and each bulk pattern of ``count``
accesses is expanded into roughly ``count / k`` simulated accesses, each
carrying weight ``k``.  Because both the working sets and the capacities
shrink together, capacity and conflict behavior relative to the workload
is preserved, while the simulation cost drops by ``k``.

A per-call ``cap`` additionally bounds the number of simulated accesses
of any single pattern so pathological patterns cannot stall a run; the
weight absorbs the difference.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SamplePlan:
    """How to expand one bulk pattern: simulate ``count`` accesses, each
    standing for ``weight`` real accesses."""

    count: int
    weight: float

    @property
    def total(self) -> float:
        return self.count * self.weight


def plan_samples(total: float, contraction: int, cap: int = 65536) -> SamplePlan:
    """Choose how many accesses to simulate for a pattern of ``total`` real
    accesses under the global ``contraction`` factor.

    Guarantees at least one simulated access for any positive pattern, and
    never more than ``cap``.
    """
    if total <= 0:
        return SamplePlan(count=0, weight=0.0)
    if contraction <= 0:
        raise ValueError("contraction must be positive")
    target = total / contraction
    count = int(min(max(1.0, target), cap))
    return SamplePlan(count=count, weight=total / count)
