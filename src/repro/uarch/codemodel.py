"""Instruction-fetch model: code footprints and software-stack depth.

The paper attributes the high L1I-cache and ITLB MPKI of big data
workloads to "the huge code size and deep software stack" (Section 6.3.2).
This module models exactly that: each executing phase runs under a
:class:`CodeProfile` describing the shape of its code working set, and the
profiler synthesizes an instruction-fetch address stream from it:

* **hot** fetches walk sequentially through a small loop body
  (``hot_bytes``) that fits in a first-level instruction cache;
* **warm** fetches (``jump_rate`` of all fetches) are calls into the wider
  set of live functions (``warm_bytes``) -- bigger than L1I but within
  ITLB reach, the signature of a framework/JVM stack;
* **cold** fetches (``cold_rate``) land uniformly in the full code
  footprint (``footprint``) -- third-party libraries, the OS, rarely-taken
  paths -- and miss both L1I and ITLB.

The preset profiles at the bottom encode the stack families the paper
runs: tight HPC kernels, SPEC-like codes, multithreaded PARSEC kernels,
Hadoop/Spark-style frameworks, database engines, and JVM server stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class CodeProfile:
    """Shape of one phase's code working set."""

    name: str
    footprint: int        # total reachable code, real bytes
    hot_bytes: int        # inner-loop body, real bytes
    warm_bytes: int       # live call targets, real bytes
    jump_rate: float      # fraction of fetches that call into warm code
    cold_rate: float      # fraction of fetches that land anywhere in footprint
    bytes_per_instr: float = 4.0

    def __post_init__(self) -> None:
        if not (0 < self.hot_bytes <= self.warm_bytes <= self.footprint):
            raise ValueError(
                f"{self.name}: need 0 < hot <= warm <= footprint, got "
                f"{self.hot_bytes}/{self.warm_bytes}/{self.footprint}"
            )
        if not (0.0 <= self.jump_rate < 1.0 and 0.0 <= self.cold_rate < 1.0):
            raise ValueError(f"{self.name}: rates must be in [0, 1)")
        if self.jump_rate + self.cold_rate >= 1.0:
            raise ValueError(f"{self.name}: jump_rate + cold_rate must be < 1")


def generate_fetch_addresses(
    profile: CodeProfile,
    base: int,
    contraction: int,
    count: int,
    cursor: int,
    rng: np.random.Generator,
    step: int = None,
) -> "tuple[np.ndarray, int]":
    """Synthesize ``count`` simulated instruction-fetch byte addresses.

    Addresses live in the contracted address space: the code regions are
    ``profile`` sizes divided by ``contraction``.  ``step`` is how far the
    sequential hot-loop cursor advances per *simulated* fetch; when each
    simulated fetch stands for ``w`` real fetches, the caller passes
    ``w * bytes_per_instr / contraction`` so the contracted cursor tracks
    the real one.

    Returns the address array and the updated hot-loop cursor.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64), cursor

    hot_size = max(64, profile.hot_bytes // contraction)
    warm_size = max(hot_size, profile.warm_bytes // contraction)
    cold_size = max(warm_size, profile.footprint // contraction)
    if step is None:
        step = max(1, int(round(profile.bytes_per_instr)))

    u = rng.random(count)
    cold_mask = u < profile.cold_rate
    warm_mask = (~cold_mask) & (u < profile.cold_rate + profile.jump_rate)
    hot_mask = ~(cold_mask | warm_mask)

    offsets = np.empty(count, dtype=np.int64)
    n_hot = int(hot_mask.sum())
    if n_hot:
        seq = (cursor + step * np.arange(1, n_hot + 1, dtype=np.int64)) % hot_size
        offsets[hot_mask] = seq
        cursor = int(seq[-1])
    n_warm = int(warm_mask.sum())
    if n_warm:
        offsets[warm_mask] = rng.integers(0, warm_size, size=n_warm, dtype=np.int64)
    n_cold = int(cold_mask.sum())
    if n_cold:
        offsets[cold_mask] = rng.integers(0, cold_size, size=n_cold, dtype=np.int64)

    return base + offsets, cursor


# ---------------------------------------------------------------------------
# Preset profiles for the software stacks the paper exercises.
# ---------------------------------------------------------------------------

#: Tight numeric kernels (HPCC: HPL, STREAM, DGEMM, ...).  Nearly all
#: fetches stay in a small loop; L1I MPKI ~0.3 in the paper.
HPC_KERNEL = CodeProfile(
    "hpc-kernel", footprint=64 * KB, hot_bytes=8 * KB, warm_bytes=24 * KB,
    jump_rate=0.0004, cold_rate=0.00002,
)

#: Multithreaded PARSEC-like kernels; slightly larger code, some runtime
#: library traffic (paper L1I MPKI ~2.9).
PARSEC_KERNEL = CodeProfile(
    "parsec-kernel", footprint=384 * KB, hot_bytes=16 * KB, warm_bytes=96 * KB,
    jump_rate=0.003, cold_rate=0.0001,
)

#: SPEC CPU-like single-threaded codes (paper L1I MPKI ~3-5).
SPEC_CODE = CodeProfile(
    "spec-code", footprint=768 * KB, hot_bytes=20 * KB, warm_bytes=128 * KB,
    jump_rate=0.0045, cold_rate=0.0002,
)

#: Analytics framework stack (Hadoop MapReduce / Spark on a JVM):
#: big code, deep call chains (paper: analytics L1I MPKI ~13-25).
FRAMEWORK_STACK = CodeProfile(
    "framework-stack", footprint=2 * MB, hot_bytes=24 * KB, warm_bytes=256 * KB,
    jump_rate=0.018, cold_rate=0.00045,
)

#: Database / query-engine stack (Hive, Impala, MySQL executors).
DATABASE_STACK = CodeProfile(
    "database-stack", footprint=1536 * KB, hot_bytes=24 * KB, warm_bytes=192 * KB,
    jump_rate=0.015, cold_rate=0.0004,
)

#: Online-service stack (app server + JVM + OS network path): the deepest
#: stack in the suite (paper: online services have the highest L1I/L2 MPKI).
SERVER_STACK = CodeProfile(
    "server-stack", footprint=4 * MB, hot_bytes=28 * KB, warm_bytes=384 * KB,
    jump_rate=0.019, cold_rate=0.0006,
)

#: NoSQL store stack (HBase-like): framework-deep but with a hotter
#: read/write path than a full app server.
NOSQL_STACK = CodeProfile(
    "nosql-stack", footprint=3 * MB, hot_bytes=24 * KB, warm_bytes=320 * KB,
    jump_rate=0.017, cold_rate=0.0005,
)

#: MPI-based analytics: native code, much shallower than a JVM framework,
#: but bigger than a pure kernel (communication library).
MPI_STACK = CodeProfile(
    "mpi-stack", footprint=512 * KB, hot_bytes=16 * KB, warm_bytes=96 * KB,
    jump_rate=0.006, cold_rate=0.0002,
)

ALL_PROFILES = (
    HPC_KERNEL, PARSEC_KERNEL, SPEC_CODE, FRAMEWORK_STACK,
    DATABASE_STACK, SERVER_STACK, NOSQL_STACK, MPI_STACK,
)
