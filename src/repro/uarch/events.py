"""Performance-event counters and derived micro-architecture metrics.

The paper characterizes workloads with hardware performance counters
collected by Linux ``perf`` (Section 6.1.1).  This module is the software
stand-in: a plain counter record that the simulated memory hierarchy and
the instrumented engines update, plus the derived metrics the paper
reports -- MPKI, instruction-mix fractions, and operation intensity
(instructions per byte of memory traffic, Section 6.3.1).

Counts are floats because bulk memory-access patterns are expanded with
stride sampling (see :mod:`repro.uarch.sampling`): each simulated access
carries a weight equal to the number of real accesses it represents.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class PerfEvents:
    """Raw event counts for one profiled run.

    Instruction counts follow the paper's Figure 4 breakdown: loads,
    stores, branches, integer and floating-point instructions.  Cache and
    TLB events follow Figure 6.  ``mem_bytes`` is the total number of
    bytes of memory accesses, the denominator of operation intensity.
    """

    # Instruction breakdown (Figure 4).
    loads: float = 0.0
    stores: float = 0.0
    branches: float = 0.0
    int_ops: float = 0.0
    fp_ops: float = 0.0

    # Memory traffic in bytes (denominator of operation intensity).
    mem_bytes: float = 0.0

    # Cache events (Figure 6-1).
    l1i_accesses: float = 0.0
    l1i_misses: float = 0.0
    l1d_accesses: float = 0.0
    l1d_misses: float = 0.0
    l2_accesses: float = 0.0
    l2_misses: float = 0.0
    l3_accesses: float = 0.0
    l3_misses: float = 0.0

    # TLB events (Figure 6-2).
    itlb_accesses: float = 0.0
    itlb_misses: float = 0.0
    dtlb_accesses: float = 0.0
    dtlb_misses: float = 0.0

    @property
    def instructions(self) -> float:
        """Total retired instructions across all classes."""
        return self.loads + self.stores + self.branches + self.int_ops + self.fp_ops

    def mpki(self, misses: float) -> float:
        """Misses per kilo-instruction for an arbitrary miss count."""
        instructions = self.instructions
        if instructions <= 0:
            return 0.0
        return 1000.0 * misses / instructions

    @property
    def l1i_mpki(self) -> float:
        return self.mpki(self.l1i_misses)

    @property
    def l1d_mpki(self) -> float:
        return self.mpki(self.l1d_misses)

    @property
    def l2_mpki(self) -> float:
        return self.mpki(self.l2_misses)

    @property
    def l3_mpki(self) -> float:
        return self.mpki(self.l3_misses)

    @property
    def itlb_mpki(self) -> float:
        return self.mpki(self.itlb_misses)

    @property
    def dtlb_mpki(self) -> float:
        return self.mpki(self.dtlb_misses)

    @property
    def fp_intensity(self) -> float:
        """Floating-point operation intensity (FP instructions per byte).

        Defined in Section 6.3.1 as the total number of floating point
        instructions divided by the total number of memory-access bytes.
        """
        if self.mem_bytes <= 0:
            return 0.0
        return self.fp_ops / self.mem_bytes

    @property
    def int_intensity(self) -> float:
        """Integer operation intensity (integer instructions per byte)."""
        if self.mem_bytes <= 0:
            return 0.0
        return self.int_ops / self.mem_bytes

    @property
    def int_fp_ratio(self) -> float:
        """Ratio of integer to floating-point instructions (Figure 4)."""
        if self.fp_ops <= 0:
            return float("inf") if self.int_ops > 0 else 0.0
        return self.int_ops / self.fp_ops

    def instruction_mix(self) -> dict:
        """Fractions of each instruction class, summing to 1 (Figure 4)."""
        total = self.instructions
        if total <= 0:
            return {"load": 0.0, "store": 0.0, "branch": 0.0, "int": 0.0, "fp": 0.0}
        return {
            "load": self.loads / total,
            "store": self.stores / total,
            "branch": self.branches / total,
            "int": self.int_ops / total,
            "fp": self.fp_ops / total,
        }

    def merge(self, other: "PerfEvents") -> "PerfEvents":
        """Return a new record with the element-wise sum of both."""
        merged = PerfEvents()
        for f in fields(PerfEvents):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def delta(self, earlier: "PerfEvents") -> "PerfEvents":
        """Counts accumulated since the ``earlier`` snapshot (self - earlier).

        Counters are monotone, so span tracing captures a snapshot at
        scope entry and computes the exact per-phase delta at exit.
        """
        diff = PerfEvents()
        for f in fields(PerfEvents):
            setattr(diff, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return diff

    def copy(self) -> "PerfEvents":
        return PerfEvents().merge(self)


@dataclass
class ProfileReport:
    """A profiled run: raw events plus the modeled execution time.

    ``cycles`` and ``seconds`` come from the CPI model in
    :mod:`repro.uarch.cpu`; ``mips`` is the paper's Figure 3-1 metric.
    """

    events: PerfEvents
    cycles: float = 0.0
    seconds: float = 0.0

    @property
    def mips(self) -> float:
        """Million instructions per second over the modeled run time."""
        if self.seconds <= 0:
            return 0.0
        return self.events.instructions / self.seconds / 1e6

    metadata: dict = field(default_factory=dict)
