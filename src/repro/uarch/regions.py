"""Named address regions for the simulated address space.

Workloads and engines do not track byte-exact pointers; instead they
declare *regions* -- named working sets with a size -- and describe their
access patterns against them (sequential scans, random probes, strided
walks).  The profiler lays regions out in a contracted simulated address
space (see :mod:`repro.uarch.sampling`) and turns patterns into cache-line
addresses.

Region sizes are declared in *real* bytes; the address space stores the
contracted size used for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Region:
    """One named working set in the simulated address space."""

    name: str
    base: int
    size: int          # contracted (simulated) size in bytes, >= 1 line
    real_size: int     # the size the workload declared, in real bytes

    # A per-region sequential cursor so repeated partial scans continue
    # where the previous one stopped, approximating streaming behavior.
    cursor: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")

    def grow(self, new_real_size: int, contraction: int, line_size: int) -> None:
        """Grow a region in place (e.g. an append-only store getting bigger).

        Regions are laid out in fixed, far-apart slots, so in-place growth
        never overlaps a neighbor (the slot size bounds any realistic
        working set by orders of magnitude).
        """
        if new_real_size < self.real_size:
            return
        self.real_size = new_real_size
        self.size = max(line_size, new_real_size // contraction)


class AddressSpace:
    """Slot allocator handing out well-separated regions.

    Each region occupies its own fixed-size slot (``_SLOT`` bytes of
    simulated address space), so regions can grow in place without ever
    overlapping.  Addresses stay well inside the int64 range that the
    vectorized address generators use.
    """

    #: Per-region slot: 16 TiB of simulated address space.
    _SLOT = 1 << 44

    def __init__(self, contraction: int = 16, line_size: int = 64):
        if contraction <= 0:
            raise ValueError("contraction must be positive")
        self.contraction = contraction
        self.line_size = line_size
        self._regions: dict = {}

    def region(self, name: str, real_size: int) -> Region:
        """Get or create the region ``name``, growing it to ``real_size``."""
        existing = self._regions.get(name)
        if existing is not None:
            existing.grow(real_size, self.contraction, self.line_size)
            return existing
        size = max(self.line_size, real_size // self.contraction)
        base = (1 << 30) + len(self._regions) * self._SLOT
        region = Region(name=name, base=base, size=size, real_size=max(1, real_size))
        self._regions[name] = region
        return region

    def get(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise KeyError(f"unknown region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __len__(self) -> int:
        return len(self._regions)
